package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/tarm-project/tarm/internal/apriori"
	"github.com/tarm-project/tarm/internal/tdb"
	"github.com/tarm-project/tarm/internal/tml"
)

// postSubscribe registers a standing statement and returns the status,
// parsed view (on 201) and raw body.
func postSubscribe(t *testing.T, url, stmt string) (int, *subView, string) {
	t.Helper()
	resp, err := http.Post(url+"/v1/subscriptions", "text/plain", strings.NewReader(stmt))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		return resp.StatusCode, nil, buf.String()
	}
	var v subView
	if err := json.Unmarshal(buf.Bytes(), &v); err != nil {
		t.Fatalf("subscription body is not JSON: %v in %q", err, buf.String())
	}
	return resp.StatusCode, &v, buf.String()
}

// getEvents long-polls one subscription's event stream.
func getEvents(t *testing.T, url, id string, after int64, waitMS int) subEventsResponse {
	t.Helper()
	var out subEventsResponse
	u := fmt.Sprintf("%s/v1/subscriptions/%s/events?after=%d&wait_ms=%d", url, id, after, waitMS)
	if code, _ := getJSON(t, u, &out); code != http.StatusOK {
		t.Fatalf("GET %s: status %d", u, code)
	}
	return out
}

// postTx appends a batch with explicit timestamps and returns the
// table's write epoch after it.
func postTx(t *testing.T, url, table string, txs []appendTx) int64 {
	t.Helper()
	body, err := json.Marshal(appendRequest{Table: table, Transactions: txs})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/append", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out appendResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("append: status %d decode err %v", resp.StatusCode, err)
	}
	return out.Epoch
}

// streamBase anchors the streaming fixture: a Monday, so weekday
// patterns are deterministic.
var streamBase = time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)

// streamItems is the per-transaction basket of the streaming fixture —
// the same shifting mixture the in-process oracle uses, so rules
// appear, change support and disappear as days close.
func streamItems(day, i int) []string {
	items := []string{"bread"}
	if i < 8 {
		items = append(items, "milk")
	}
	if day >= 2 && day <= 4 && i < 7 {
		items = append(items, "bbq", "charcoal")
	}
	if (day%7 == 5 || day%7 == 6) && i < 9 {
		items = append(items, "choc", "wine")
	}
	if day >= 5 && i < 6 {
		items = append(items, "tea")
	}
	return items
}

// streamTx builds transactions [lo, hi) of one fixture day.
func streamTx(day, lo, hi int) []appendTx {
	txs := make([]appendTx, 0, hi-lo)
	for i := lo; i < hi; i++ {
		txs = append(txs, appendTx{
			At:    streamBase.AddDate(0, 0, day).Add(time.Duration(10+i) * time.Minute),
			Items: streamItems(day, i),
		})
	}
	return txs
}

// newStreamServer builds a server over an initially empty transaction
// table named "stream", so the append traffic is the only clock.
func newStreamServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *tdb.DB) {
	t.Helper()
	db := tdb.NewMemDB()
	if _, err := db.CreateTxTable("stream"); err != nil {
		t.Fatal(err)
	}
	s := New(db, cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.subs.shutdown()
	})
	return s, ts, db
}

const streamStmt = `SUBSCRIBE MINE PERIODS FROM stream AT GRANULARITY day THRESHOLD SUPPORT 0.45 CONFIDENCE 0.6 FREQUENCY 0.9`

// waitSettled polls the subscription view until its epoch reaches
// epoch (every append through it reflected in an emitted event).
func waitSettled(t *testing.T, url, id string, epoch int64) subView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var v subView
	for {
		if code, _ := getJSON(t, url+"/v1/subscriptions/"+id, &v); code != http.StatusOK {
			t.Fatalf("GET subscription %s: status %d", id, code)
		}
		if v.Epoch >= epoch {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("subscription %s never settled: epoch %d < %d (errors=%d lastErr=%q)",
				id, v.Epoch, epoch, v.Errors, v.LastError)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStreamingOracleHTTP is the acceptance gate of continuous mining:
// for each counting backend, a standing statement is driven over HTTP
// by concurrent append posters (including out-of-order writes into
// already-closed granules); afterwards the emitted delta stream is
// folded from empty and must reproduce, bit for bit, what a
// from-scratch MINE over the settled table returns.
func TestStreamingOracleHTTP(t *testing.T) {
	backends := []apriori.Backend{
		apriori.BackendNaive,
		apriori.BackendHashTree,
		apriori.BackendBitmap,
		apriori.BackendRoaring,
	}
	for _, backend := range backends {
		backend := backend
		t.Run(backend.String(), func(t *testing.T) {
			t.Parallel()
			_, ts, db := newStreamServer(t, Config{Backend: backend, SubQueue: 512})

			code, sub, raw := postSubscribe(t, ts.URL, streamStmt)
			if code != http.StatusCreated {
				t.Fatalf("subscribe: status %d: %s", code, raw)
			}

			// Three writers per day race each other (and the refresh
			// worker); writer 2 also writes out of order into the
			// previous, already-closed day.
			var lastEpoch int64
			var epochMu sync.Mutex
			for day := 1; day <= 8; day++ {
				var writers sync.WaitGroup
				for w := 0; w < 3; w++ {
					w := w
					writers.Add(1)
					go func() {
						defer writers.Done()
						lo, hi := w*3, w*3+3
						if w == 2 {
							hi = 10
						}
						e := postTx(t, ts.URL, "stream", streamTx(day, lo, hi))
						if w == 2 && day > 2 {
							late := []appendTx{{
								At:    streamBase.AddDate(0, 0, day-1).Add(40 * time.Minute),
								Items: []string{"bread", "milk"},
							}}
							e = postTx(t, ts.URL, "stream", late)
						}
						epochMu.Lock()
						if e > lastEpoch {
							lastEpoch = e
						}
						epochMu.Unlock()
					}()
				}
				writers.Wait()
			}
			// Sentinel: one transaction on day 9 closes day 8 and forces
			// a final refresh at the settled epoch.
			sentinel := postTx(t, ts.URL, "stream", streamTx(9, 0, 1))
			waitSettled(t, ts.URL, sub.ID, sentinel)

			ev := getEvents(t, ts.URL, sub.ID, -1, 0)
			if ev.Dropped != 0 {
				t.Fatalf("oracle stream dropped %d events; queue sized wrong", ev.Dropped)
			}
			if len(ev.Events) == 0 || !ev.Events[0].Initial {
				t.Fatalf("stream did not start with the registration snapshot: %+v", ev.Events)
			}
			fold := &tml.RuleSet{}
			for i, e := range ev.Events {
				if e.Seq != int64(i) {
					t.Fatalf("event %d has seq %d: gap in an undropped stream", i, e.Seq)
				}
				if err := fold.Apply(e.Deltas); err != nil {
					t.Fatalf("folding event %d: %v", i, err)
				}
			}

			// The reference: a fresh executor, same backend, same table,
			// the same statement without SUBSCRIBE.
			stmt, err := tml.Parse(strings.TrimPrefix(streamStmt, "SUBSCRIBE "))
			if err != nil {
				t.Fatal(err)
			}
			ref := tml.NewExecutor(db)
			ref.Backend = backend
			res, err := ref.ExecStmtContext(context.Background(), stmt)
			if err != nil {
				t.Fatal(err)
			}
			want := (&tml.RuleSet{Rows: tml.KeyRows(res.Cols, tml.DisplayCells(res))}).Sorted()
			got := fold.Sorted()
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("folded delta stream diverged from from-scratch MINE\n fold: %v\n mine: %v", got, want)
			}
			if len(want) == 0 {
				t.Fatal("oracle compared empty result sets; fixture thresholds are wrong")
			}
		})
	}
}

// TestSlowSubscriberDropsNotStalls: a subscriber that never reads, on a
// tiny ring, loses its oldest events — counted, with the seq gap
// visible — while an attentive subscriber on the same table receives
// every event and interactive statements keep being served.
func TestSlowSubscriberDropsNotStalls(t *testing.T) {
	s, ts, _ := newStreamServer(t, Config{SubQueue: 2})

	code, wedged, raw := postSubscribe(t, ts.URL, streamStmt)
	if code != http.StatusCreated {
		t.Fatalf("subscribe wedged: status %d: %s", code, raw)
	}
	code, active, raw := postSubscribe(t, ts.URL, streamStmt)
	if code != http.StatusCreated {
		t.Fatalf("subscribe active: status %d: %s", code, raw)
	}

	// Eight day-closes produce more events than the 2-slot ring holds.
	// The active subscriber polls as it goes, so every event is read
	// before the ring overwrites it; the wedged one never reads. (The
	// ring retains, it does not consume: the drop counter rises for both
	// once the lifetime event count exceeds the ring, but an attentive
	// reader has already read what gets overwritten — loss shows up as a
	// seq gap, and the active stream must not have one.)
	var after int64 = -1
	var activeEvents []subEvent
	var lastEpoch int64
	for day := 1; day <= 8; day++ {
		lastEpoch = postTx(t, ts.URL, "stream", streamTx(day, 0, 10))
		waitSettled(t, ts.URL, active.ID, lastEpoch)
		ev := getEvents(t, ts.URL, active.ID, after, 0)
		activeEvents = append(activeEvents, ev.Events...)
		after = ev.NextAfter
	}
	for i, e := range activeEvents {
		if e.Seq != int64(i) {
			t.Fatalf("active subscriber missed an event: seq %d at position %d", e.Seq, i)
		}
	}
	if len(activeEvents) < 8 {
		t.Fatalf("active subscriber saw %d events over 8 day-closes, want >= 8", len(activeEvents))
	}

	// The wedged subscriber refreshed just as often but retains only the
	// newest two events; the overflow is counted per subscription and in
	// the registry, and the retained seqs expose the gap.
	waitSettled(t, ts.URL, wedged.ID, lastEpoch)
	wv := getEvents(t, ts.URL, wedged.ID, -1, 0)
	if len(wv.Events) != 2 {
		t.Fatalf("wedged ring holds %d events, want 2", len(wv.Events))
	}
	if wv.Dropped == 0 {
		t.Fatal("wedged subscriber reported no drops after overflowing its ring")
	}
	if first := wv.Events[0].Seq; first == 0 {
		t.Fatal("wedged subscriber kept seq 0: ring did not drop oldest")
	}
	if got := s.Registry().Counter(MetricSubDropped).Value(); got == 0 {
		t.Fatal("tarmd_sub_dropped_total did not count the overflow")
	}

	// The shared executor is not wedged: a one-shot statement still runs.
	codeStmt, body, _ := postStatement(t, ts.URL,
		"MINE RULES FROM stream THRESHOLD SUPPORT 0.5 CONFIDENCE 0.6;", "")
	if codeStmt != http.StatusOK {
		t.Fatalf("statement alongside wedged subscriber: status %d: %s", codeStmt, body)
	}
}

// TestSubscribeLifecycle: register on a populated table, get the
// initial snapshot, observe it through list and get, then delete.
func TestSubscribeLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	t.Cleanup(s.subs.shutdown)

	stmt := "SUBSCRIBE MINE RULES FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.6"
	code, sub, raw := postSubscribe(t, ts.URL, stmt)
	if code != http.StatusCreated {
		t.Fatalf("subscribe: status %d: %s", code, raw)
	}
	if sub.Table != "baskets" || sub.Task == "" {
		t.Fatalf("view = %+v, want table baskets and a task", sub)
	}
	if !strings.HasPrefix(sub.Statement, "SUBSCRIBE MINE RULES") {
		t.Fatalf("statement not canonicalised: %q", sub.Statement)
	}

	// The registration snapshot arrives as event 0, all rules "added".
	ev := getEvents(t, ts.URL, sub.ID, -1, 5000)
	if len(ev.Events) != 1 || !ev.Events[0].Initial {
		t.Fatalf("events = %+v, want one initial snapshot", ev.Events)
	}
	for _, d := range ev.Events[0].Deltas {
		if d.Kind != tml.DeltaAdded {
			t.Fatalf("snapshot delta kind %q, want added", d.Kind)
		}
	}
	if ev.Events[0].Rules != len(ev.Events[0].Deltas) || ev.Events[0].Rules == 0 {
		t.Fatalf("snapshot rules=%d deltas=%d, want equal and nonzero",
			ev.Events[0].Rules, len(ev.Events[0].Deltas))
	}

	var list []subView
	if code, _ := getJSON(t, ts.URL+"/v1/subscriptions", &list); code != http.StatusOK || len(list) != 1 {
		t.Fatalf("list: status %d len %d, want 200 with 1", code, len(list))
	}
	var one subView
	if code, _ := getJSON(t, ts.URL+"/v1/subscriptions/"+sub.ID, &one); code != http.StatusOK || one.ID != sub.ID {
		t.Fatalf("get: status %d id %q", code, one.ID)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/subscriptions/"+sub.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	if code, _ := getJSON(t, ts.URL+"/v1/subscriptions/"+sub.ID, nil); code != http.StatusNotFound {
		t.Fatalf("get after delete: status %d, want 404", code)
	}
	if got := s.Registry().Gauge(MetricSubsActive).Value(); got != 0 {
		t.Fatalf("tarmd_subs_active = %v after delete, want 0", got)
	}
}

// TestSubscribeSSE: the same events are served as text/event-stream.
func TestSubscribeSSE(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	t.Cleanup(s.subs.shutdown)
	code, sub, raw := postSubscribe(t, ts.URL,
		"SUBSCRIBE MINE RULES FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.6")
	if code != http.StatusCreated {
		t.Fatalf("subscribe: status %d: %s", code, raw)
	}
	// Let the snapshot land first so one read suffices.
	getEvents(t, ts.URL, sub.ID, -1, 5000)

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/subscriptions/"+sub.ID+"/events", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var data string
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "data: ") {
			data = strings.TrimPrefix(sc.Text(), "data: ")
			break
		}
	}
	var ev subEvent
	if err := json.Unmarshal([]byte(data), &ev); err != nil {
		t.Fatalf("SSE data is not one JSON event: %v in %q", err, data)
	}
	if ev.Seq != 0 || !ev.Initial {
		t.Fatalf("first SSE event = %+v, want seq 0 initial", ev)
	}
}

// TestStatementEndpointRejectsSubscribe: a SUBSCRIBE posted to the
// one-shot endpoint is a client error pointing at /v1/subscriptions.
func TestStatementEndpointRejectsSubscribe(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body, _ := postStatement(t, ts.URL,
		"SUBSCRIBE MINE RULES FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.6", "")
	if code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", code, body)
	}
	if e := decodeError(t, body); !strings.Contains(e.Error, "/v1/subscriptions") {
		t.Fatalf("error %q does not point at /v1/subscriptions", e.Error)
	}
}

// TestSubErrorBody400: a one-shot MINE (or garbage) posted to the
// subscription endpoint is 400 with the uniform error contract.
func TestSubErrorBody400(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, stmt := range []string{
		"MINE RULES FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.6",
		"SUBSCRIBE MINE RULES FROM",
		"SUBSCRIBE MINE HISTORY FROM baskets RULE 'bread => milk' THRESHOLD SUPPORT 0.3 CONFIDENCE 0.6",
	} {
		code, _, body := postSubscribe(t, ts.URL, stmt)
		if code != http.StatusBadRequest {
			t.Fatalf("%q: status %d, want 400: %s", stmt, code, body)
		}
		if e := decodeError(t, body); e.Error == "" || e.RequestID == "" || e.RetryAfterMS != 0 {
			t.Fatalf("%q: error body %+v breaks the contract", stmt, e)
		}
	}
	// Bad event-stream parameters are 400 too.
	_, sub, _ := postSubscribe(t, ts.URL,
		"SUBSCRIBE MINE RULES FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.6")
	for _, q := range []string{"?after=x", "?wait_ms=-1", "?wait_ms=x"} {
		code, _ := getJSON(t, ts.URL+"/v1/subscriptions/"+sub.ID+"/events"+q, nil)
		if code != http.StatusBadRequest {
			t.Fatalf("events%s: status %d, want 400", q, code)
		}
	}
}

// TestSubErrorBody404: unknown tables and unknown subscription ids.
func TestSubErrorBody404(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, _, body := postSubscribe(t, ts.URL,
		"SUBSCRIBE MINE RULES FROM nosuch THRESHOLD SUPPORT 0.5 CONFIDENCE 0.6")
	if code != http.StatusNotFound {
		t.Fatalf("unknown table: status %d, want 404: %s", code, body)
	}
	if e := decodeError(t, body); !strings.Contains(e.Error, "nosuch") || e.RequestID == "" {
		t.Fatalf("error body %+v breaks the contract", e)
	}
	for _, u := range []string{"/v1/subscriptions/sub-99", "/v1/subscriptions/sub-99/events"} {
		if code, _ := getJSON(t, ts.URL+u, nil); code != http.StatusNotFound {
			t.Fatalf("GET %s: status %d, want 404", u, code)
		}
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/subscriptions/sub-99", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown: status %d, want 404", resp.StatusCode)
	}
}

// TestSubErrorBody429: the subscription limit rejects with Retry-After
// in header and body, like the statement queue.
func TestSubErrorBody429(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxSubs: 1, RetryAfter: 2 * time.Second})
	t.Cleanup(s.subs.shutdown)
	if code, _, raw := postSubscribe(t, ts.URL,
		"SUBSCRIBE MINE RULES FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.6"); code != http.StatusCreated {
		t.Fatalf("first subscribe: status %d: %s", code, raw)
	}
	code, _, body := postSubscribe(t, ts.URL,
		"SUBSCRIBE MINE PERIODS FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.6")
	if code != http.StatusTooManyRequests {
		t.Fatalf("second subscribe: status %d, want 429: %s", code, body)
	}
	e := decodeError(t, body)
	if e.RetryAfterMS != 2000 || e.RequestID == "" || !strings.Contains(e.Error, "limit") {
		t.Fatalf("429 body %+v breaks the contract", e)
	}
	if got := s.Registry().Counter(MetricSubRejected).Value(); got != 1 {
		t.Fatalf("tarmd_sub_rejected_total = %d, want 1", got)
	}
}

// TestSubErrorBody503: a draining server refuses registrations and its
// standing workers are stopped.
func TestSubErrorBody503(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	code, _, body := postSubscribe(t, ts.URL,
		"SUBSCRIBE MINE RULES FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.6")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", code, body)
	}
	e := decodeError(t, body)
	if e.RetryAfterMS == 0 || !strings.Contains(e.Error, "draining") {
		t.Fatalf("503 body %+v breaks the contract", e)
	}
}
