// Package server implements tarmd, the concurrent TML mining service:
// an HTTP/JSON front end that executes MINE and EXPLAIN MINE
// statements for many sessions over one shared database and one shared
// hold-table cache.
//
// Interactive mining workloads are bursts of near-duplicate statements
// — the same table, granularity and thresholds with small variations —
// which is exactly what the support-monotone HoldCache serves best:
// concurrent identical statements singleflight onto one cold build,
// and follow-ups at equal-or-higher support re-threshold the resident
// count vectors without touching the data. The server adds the
// multi-session scaffolding around that engine:
//
//   - a bounded worker pool: at most Pool statements execute at once,
//     at most Queue more wait; beyond that requests are rejected with
//     429 and a Retry-After hint (backpressure, not collapse);
//   - per-statement deadlines (server default, tightened per request),
//     surfaced as 504 when exceeded;
//   - graceful drain: Drain stops admission (503) and waits for the
//     statements in flight, so a SIGTERM never kills a running MINE;
//   - observability: request counters, queue-depth and inflight
//     gauges, per-task latency histograms and the engine's own mining
//     telemetry all land in one obs.Registry, served on the same mux
//     (/metrics, /debug/vars, /debug/pprof).
//
// Every request is traced: the server generates (or propagates) an
// X-Request-ID, echoes it on every response — including 429/503/504 —
// and attaches a request-scoped obs.Trace to the context, so a
// statement's execution leaves a span tree (operators, hold-table
// build, counting passes) keyed by that ID. Completed statements land
// in a bounded query journal; both are served live:
//
// Endpoints:
//
//	POST /v1/statements    execute one MINE or EXPLAIN MINE statement
//	POST /v1/append        append a batch of transactions to a table
//	POST /v1/flush         checkpoint the database (truncates the WAL)
//	POST /v1/import        bulk-load basket CSV into a table
//	GET  /v1/export        dump a table as basket CSV
//	GET  /v1/tables        list tables (name, kind, rows)
//	GET  /v1/queries       recent statements + statements in flight
//	GET  /v1/queries/{id}  one statement (by request ID or seq) with
//	                       its full span tree
//	GET  /v1/cache         hold-table cache stats + resident entries
//	GET  /healthz          liveness + pool occupancy
//
// POST bodies are JSON ({"statement": "...", "timeout_ms": 0}) or raw
// text. Responses are JSON; ?format=text returns the same aligned
// table tarmine prints, byte for byte. Errors are a JSON body
// {error, request_id, retry_after_ms?} on every status path.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tarm-project/tarm/internal/apriori"
	"github.com/tarm-project/tarm/internal/core"
	"github.com/tarm-project/tarm/internal/minisql"
	"github.com/tarm-project/tarm/internal/obs"
	"github.com/tarm-project/tarm/internal/tdb"
	"github.com/tarm-project/tarm/internal/tml"
)

// Server metric names, published on the configured Registry next to
// the engine's tarm_* mining metrics.
const (
	MetricRequests     = "tarmd_requests_total"          // statements admitted (counter)
	MetricOK           = "tarmd_statements_ok_total"     // statements answered 200 (counter)
	MetricErrors       = "tarmd_statements_err_total"    // statements failed (counter)
	MetricTimeouts     = "tarmd_statement_timeouts_total" // deadline-exceeded statements (counter)
	MetricQueueFull    = "tarmd_rejected_queue_full_total" // 429s (counter)
	MetricDraining     = "tarmd_rejected_draining_total"   // 503s during drain (counter)
	MetricQueueDepth   = "tarmd_queue_depth"             // statements waiting for a pool slot (gauge)
	MetricInflight     = "tarmd_inflight"                // statements executing (gauge)
	MetricLatency      = "tarmd_statement_seconds"       // end-to-end statement latency (histogram)
	metricLatencyTask  = "tarmd_statement_seconds_task_" // + task key (histograms)
)

// Config shapes a Server. The zero value is usable: defaults are
// filled by New.
type Config struct {
	// Pool is the maximum number of statements executing concurrently
	// (0 = 4). Mining saturates cores quickly, so this is a statement
	// budget, not a thread budget; Workers below parallelises inside a
	// statement.
	Pool int
	// Queue is how many admitted statements may wait for a pool slot
	// (0 = 2×Pool). Requests beyond Pool+Queue get 429 + Retry-After.
	Queue int
	// Timeout is the per-statement deadline (0 = none). A request's
	// timeout_ms can tighten it, never extend it.
	Timeout time.Duration
	// RetryAfter is the hint on 429/503 responses (0 = 1s).
	RetryAfter time.Duration
	// Backend and Workers configure the counting pass of every
	// statement, like the -backend/-workers flags of the CLIs.
	Backend apriori.Backend
	Workers int
	// CacheBytes is the shared hold-table cache budget (0 =
	// core.DefaultCacheBytes, < 0 disables caching).
	CacheBytes int64
	// Registry receives the server and engine metrics (nil = a fresh
	// registry, so embedded servers do not collide on obs.Default).
	Registry *obs.Registry
	// Tracer, when set, additionally receives every statement's mining
	// telemetry (tests hook the pass stream through this).
	Tracer obs.Tracer
	// JournalSize is the query-journal ring capacity in completed
	// statements (0 = obs.DefaultJournalSize, < 0 disables the
	// journal; the introspection endpoints then serve empty views).
	JournalSize int
	// SlowQuery, when positive, logs a structured warning line for
	// every statement slower than this.
	SlowQuery time.Duration
	// JournalSink, when set, receives every completed statement record
	// as one JSON line (an audit/replay log).
	JournalSink io.Writer
	// MaxSubs bounds the standing SUBSCRIBE MINE statements registered
	// at once (0 = 16); registrations beyond it get 429 + Retry-After.
	MaxSubs int
	// SubQueue is each subscription's event-ring capacity (0 = 64). A
	// subscriber that stops reading loses its *oldest* events — counted
	// and surfaced, never blocking the refresh worker.
	SubQueue int
}

func (c Config) withDefaults() Config {
	if c.Pool <= 0 {
		c.Pool = 4
	}
	if c.Queue <= 0 {
		c.Queue = 2 * c.Pool
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = core.DefaultCacheBytes
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.MaxSubs <= 0 {
		c.MaxSubs = 16
	}
	if c.SubQueue <= 0 {
		c.SubQueue = 64
	}
	return c
}

// Server is the tarmd HTTP front end. It is an http.Handler; run it
// under any http.Server and call Drain before exiting.
type Server struct {
	cfg     Config
	db      *tdb.DB
	exec    *tml.Executor
	reg     *obs.Registry
	mux     *http.ServeMux
	journal *obs.Journal
	subs    *subManager

	sem      chan struct{} // pool slots
	admitted atomic.Int64  // statements admitted and not yet finished
	inflight atomic.Int64  // statements holding a pool slot
	draining atomic.Bool
	wg       sync.WaitGroup // in-flight statement handlers, for Drain
}

// New builds a server over db. All sessions share one executor — and
// through it one HoldCache — so concurrent identical statements
// deduplicate onto a single cold build and warm statements are served
// from memory regardless of which client issued the build.
func New(db *tdb.DB, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg: cfg,
		db:  db,
		reg: cfg.Registry,
		sem: make(chan struct{}, cfg.Pool),
	}
	s.exec = tml.NewExecutor(db)
	s.exec.Backend = cfg.Backend
	s.exec.Workers = cfg.Workers
	s.exec.Cache = core.NewHoldCache(cfg.CacheBytes)
	s.exec.Tracer = obs.Multi(obs.NewRegistryTracer(s.reg, ""), cfg.Tracer)
	if cfg.JournalSize >= 0 {
		s.journal = obs.NewJournal(obs.JournalConfig{
			Size:          cfg.JournalSize,
			SlowThreshold: cfg.SlowQuery,
			Sink:          cfg.JournalSink,
		})
	}
	s.exec.Journal = s.journal

	// The statement endpoints share the mux with the observability
	// endpoints, so one port serves both traffic and diagnostics.
	s.mux = obs.DebugMux(s.reg)
	s.mux.HandleFunc("POST /v1/statements", s.handleStatement)
	s.mux.HandleFunc("POST /v1/append", s.handleAppend)
	s.mux.HandleFunc("POST /v1/flush", s.handleFlush)
	s.mux.HandleFunc("POST /v1/import", s.handleImport)
	s.mux.HandleFunc("GET /v1/export", s.handleExport)
	s.mux.HandleFunc("GET /v1/tables", s.handleTables)
	s.mux.HandleFunc("GET /v1/queries", s.handleQueries)
	s.mux.HandleFunc("GET /v1/queries/{id}", s.handleQueryByID)
	s.mux.HandleFunc("GET /v1/cache", s.handleCache)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.subs = newSubManager(s)
	s.mux.HandleFunc("POST /v1/subscriptions", s.handleSubscribe)
	s.mux.HandleFunc("GET /v1/subscriptions", s.handleSubList)
	s.mux.HandleFunc("GET /v1/subscriptions/{id}", s.handleSubGet)
	s.mux.HandleFunc("GET /v1/subscriptions/{id}/events", s.handleSubEvents)
	s.mux.HandleFunc("DELETE /v1/subscriptions/{id}", s.handleSubDelete)
	return s
}

// Executor exposes the shared TML executor (and through it the shared
// HoldCache) for embedders that mix HTTP and in-process statements.
func (s *Server) Executor() *tml.Executor { return s.exec }

// Registry returns the metrics registry the server publishes to.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Journal returns the query journal (nil when disabled).
func (s *Server) Journal() *obs.Journal { return s.journal }

// ServeHTTP implements http.Handler: the request-ID middleware around
// the mux. Every request gets an X-Request-ID — the client's, when it
// sent a well-formed one, else a fresh trace ID — echoed on the
// response whatever the status, and a request-scoped trace in the
// context under that ID, which the executor turns into the statement's
// span tree.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rid := sanitizeRequestID(r.Header.Get("X-Request-ID"))
	if rid == "" {
		rid = obs.NewTraceID()
	}
	// Set before dispatch so rejection paths (429/503/504, even a mux
	// 404) carry the ID too.
	w.Header().Set("X-Request-ID", rid)
	r = r.WithContext(obs.ContextWithTrace(r.Context(), obs.NewTrace(rid)))
	s.mux.ServeHTTP(w, r)
}

// sanitizeRequestID accepts client-supplied IDs made of unreserved
// header-safe characters, capped at 64; anything else is discarded (a
// fresh ID is generated) rather than reflected into logs and traces.
func sanitizeRequestID(id string) string {
	if len(id) == 0 || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return ""
		}
	}
	return id
}

// Drain stops admitting statements (they get 503 + Retry-After) and
// waits for the ones in flight to finish, or for ctx to expire. It is
// the statement-level half of a graceful shutdown; pair it with
// http.Server.Shutdown for the connection-level half.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	// Stop the standing statements first: their background refreshes
	// would otherwise keep the executor busy while we wait for the
	// interactive statements to finish.
	s.subs.shutdown()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// An idle server is drained regardless of the context: only
		// report interruption when statements are actually in flight.
		if s.admitted.Load() == 0 {
			<-done
			return nil
		}
		return fmt.Errorf("server: drain interrupted with %d statement(s) in flight: %w",
			s.admitted.Load(), ctx.Err())
	}
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// statementRequest is the POST /v1/statements JSON body.
type statementRequest struct {
	Statement string `json:"statement"`
	// TimeoutMS tightens the server's per-statement deadline for this
	// request; it can never extend it.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// statementResponse is the JSON answer: the result table (cells
// rendered exactly as the CLI displays them) plus timing.
type statementResponse struct {
	Statement string     `json:"statement"`
	RequestID string     `json:"request_id,omitempty"`
	Cols      []string   `json:"cols"`
	Rows      [][]string `json:"rows"`
	RowCount  int        `json:"row_count"`
	WallMS    float64    `json:"wall_ms"`
}

// errorResponse is the uniform error body of every non-2xx status
// path: the message, the request ID for cross-referencing logs and
// traces, and — on backpressure rejections (429/503) — the Retry-After
// hint in milliseconds.
type errorResponse struct {
	Error        string `json:"error"`
	RequestID    string `json:"request_id,omitempty"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// maxBody bounds statement bodies; TML statements are lines, not blobs.
const maxBody = 1 << 20

// handleStatement admits, executes and renders one statement.
func (s *Server) handleStatement(w http.ResponseWriter, r *http.Request) {
	req, err := readStatement(r)
	if err != nil {
		s.reject(w, http.StatusBadRequest, err.Error())
		return
	}

	// Admission control. Draining beats queueing: a draining server
	// refuses everything so the pool empties monotonically.
	if s.draining.Load() {
		s.reg.Counter(MetricDraining).Add(1)
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		s.reject(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if n := s.admitted.Add(1); n > int64(s.cfg.Pool+s.cfg.Queue) {
		s.admitted.Add(-1)
		s.reg.Counter(MetricQueueFull).Add(1)
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		s.reject(w, http.StatusTooManyRequests,
			fmt.Sprintf("statement queue full (%d executing + %d waiting)", s.cfg.Pool, s.cfg.Queue))
		return
	}
	s.wg.Add(1)
	defer s.wg.Done()
	// Runs after the slot-release defer below (LIFO), so the last
	// gauge publication of the request sees the decremented count.
	defer func() {
		s.admitted.Add(-1)
		s.gauges()
	}()
	s.reg.Counter(MetricRequests).Add(1)
	s.gauges()

	// The statement's deadline covers the queue wait too: a statement
	// that waited its deadline away is already late.
	ctx, cancel := s.statementContext(r.Context(), req.TimeoutMS)
	defer cancel()

	// Take a pool slot or give up (client gone / deadline passed).
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.statementError(w, req.Statement, ctx.Err())
		return
	}
	s.inflight.Add(1)
	s.gauges()
	defer func() {
		<-s.sem
		s.inflight.Add(-1)
		s.gauges()
	}()

	start := time.Now()
	res, task, err := s.execute(ctx, req.Statement)
	wall := time.Since(start)
	s.reg.Histogram(MetricLatency).Observe(wall.Seconds())
	if task != "" {
		s.reg.Histogram(metricLatencyTask + task).Observe(wall.Seconds())
	}
	if err != nil {
		s.statementError(w, req.Statement, err)
		return
	}
	s.reg.Counter(MetricOK).Add(1)

	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		minisql.Format(w, res)
		return
	}
	resp := statementResponse{
		Statement: req.Statement,
		RequestID: w.Header().Get("X-Request-ID"),
		Cols:      res.Cols,
		Rows:      displayRows(res),
		RowCount:  len(res.Rows),
		WallMS:    float64(wall) / float64(time.Millisecond),
	}
	writeJSON(w, http.StatusOK, resp)
}

// execute routes one admitted statement: EXPLAIN MINE to the planner,
// MINE to the executor. Anything else is not served here — tarmd is a
// mining endpoint, and concurrent SQL writes would race the miners.
func (s *Server) execute(ctx context.Context, input string) (*minisql.Result, string, error) {
	if rest, ok := tml.SplitExplain(input); ok {
		stmt, err := tml.Parse(rest)
		if err != nil {
			return nil, "", err
		}
		res, err := s.exec.Explain(stmt)
		return res, tml.TaskKey(stmt), err
	}
	if !tml.IsMineStatement(input) {
		return nil, "", fmt.Errorf("tarmd: only MINE and EXPLAIN MINE statements are served (got %.40q)", input)
	}
	stmt, err := tml.Parse(input)
	if err != nil {
		return nil, "", err
	}
	if stmt.Subscribe {
		return nil, "", fmt.Errorf("tarmd: SUBSCRIBE registers a standing statement; POST it to /v1/subscriptions")
	}
	res, err := s.exec.ExecStmtContext(ctx, stmt)
	return res, tml.TaskKey(stmt), err
}

// statementContext derives the statement's deadline: the server
// default, tightened by the request's timeout_ms when that is sooner.
func (s *Server) statementContext(parent context.Context, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.Timeout
	if timeoutMS > 0 {
		if rd := time.Duration(timeoutMS) * time.Millisecond; d == 0 || rd < d {
			d = rd
		}
	}
	if d <= 0 {
		return context.WithCancel(parent)
	}
	return context.WithTimeout(parent, d)
}

// statementError maps an execution error onto a status code: deadline
// exhaustion is the gateway-timeout contract (504), everything else —
// parse errors, unknown tables, statements whose feature covers no
// data — is the client's statement (400).
func (s *Server) statementError(w http.ResponseWriter, stmt string, err error) {
	s.reg.Counter(MetricErrors).Add(1)
	code := http.StatusBadRequest
	if errors.Is(err, context.DeadlineExceeded) {
		s.reg.Counter(MetricTimeouts).Add(1)
		code = http.StatusGatewayTimeout
	} else if errors.Is(err, context.Canceled) {
		// The client went away; the code is moot but keep the 4xx class.
		code = http.StatusBadRequest
	}
	s.reject(w, code, err.Error())
}

// readStatement decodes the request body: JSON when declared, raw text
// otherwise.
func readStatement(r *http.Request) (statementRequest, error) {
	var req statementRequest
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody))
	if err != nil {
		return req, fmt.Errorf("tarmd: reading body: %w", err)
	}
	ct, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if ct == "application/json" {
		if err := json.Unmarshal(body, &req); err != nil {
			return req, fmt.Errorf("tarmd: bad JSON body: %w", err)
		}
	} else {
		req.Statement = string(body)
	}
	if len(req.Statement) == 0 {
		return req, fmt.Errorf("tarmd: empty statement")
	}
	return req, nil
}

// tableInfo is one GET /v1/tables row.
type tableInfo struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "transactions" or "table"
	Rows int    `json:"rows"`
}

func (s *Server) handleTables(w http.ResponseWriter, _ *http.Request) {
	infos := []tableInfo{}
	for _, n := range s.db.Names() {
		info := tableInfo{Name: n, Kind: "table"}
		if s.db.IsTxTable(n) {
			info.Kind = "transactions"
			if t, ok := s.db.TxTable(n); ok {
				info.Rows = t.Len()
			}
		} else if t, ok := s.db.Table(n); ok {
			info.Rows = t.Len()
		}
		infos = append(infos, info)
	}
	writeJSON(w, http.StatusOK, infos)
}

// queriesView is the GET /v1/queries answer: what is running now and
// what ran recently (newest first, span trees stripped — fetch one by
// ID for its tree).
type queriesView struct {
	Inflight []obs.InflightInfo `json:"inflight"`
	Recent   []*obs.QueryRecord `json:"recent"`
	Total    int64              `json:"total"` // completed since startup
}

func (s *Server) handleQueries(w http.ResponseWriter, r *http.Request) {
	n := 0 // all retained
	if v := r.URL.Query().Get("n"); v != "" {
		if parsed, err := strconv.Atoi(v); err == nil && parsed > 0 {
			n = parsed
		}
	}
	view := queriesView{
		Inflight: s.journal.InFlight(),
		Recent:   s.journal.Recent(n),
		Total:    s.journal.Total(),
	}
	if view.Inflight == nil {
		view.Inflight = []obs.InflightInfo{}
	}
	if view.Recent == nil {
		view.Recent = []*obs.QueryRecord{}
	}
	writeJSON(w, http.StatusOK, view)
}

// inflightView is GET /v1/queries/{id} for a statement still running:
// the live in-flight row plus a snapshot of its partial span tree.
type inflightView struct {
	obs.InflightInfo
	Spans []*obs.SpanNode `json:"spans,omitempty"`
}

func (s *Server) handleQueryByID(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, live := s.journal.Get(id)
	switch {
	case rec != nil:
		writeJSON(w, http.StatusOK, rec)
	case live != nil:
		writeJSON(w, http.StatusOK, inflightView{
			InflightInfo: *live,
			Spans:        s.journal.InFlightTrace(id).Tree(),
		})
	default:
		s.reject(w, http.StatusNotFound, fmt.Sprintf("tarmd: no query %q in the journal", id))
	}
}

// cacheView is the GET /v1/cache answer: the shared hold-table cache's
// counters plus its resident entries, most recently used first.
type cacheView struct {
	Stats   core.CacheStats  `json:"stats"`
	Entries []core.EntryInfo `json:"entries"`
}

func (s *Server) handleCache(w http.ResponseWriter, _ *http.Request) {
	view := cacheView{
		Stats:   s.exec.Cache.Stats(),
		Entries: s.exec.Cache.Entries(),
	}
	if view.Entries == nil {
		view.Entries = []core.EntryInfo{}
	}
	writeJSON(w, http.StatusOK, view)
}

type healthz struct {
	Status   string `json:"status"` // "ok" or "draining"
	Inflight int64  `json:"inflight"`
	Queued   int64  `json:"queued"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h := healthz{Status: "ok", Inflight: s.inflight.Load()}
	h.Queued = s.admitted.Load() - h.Inflight
	if h.Queued < 0 {
		h.Queued = 0
	}
	if s.draining.Load() {
		h.Status = "draining"
	}
	writeJSON(w, http.StatusOK, h)
}

// gauges publishes the pool occupancy.
func (s *Server) gauges() {
	inflight := s.inflight.Load()
	queued := s.admitted.Load() - inflight
	if queued < 0 {
		queued = 0
	}
	s.reg.Gauge(MetricInflight).Set(float64(inflight))
	s.reg.Gauge(MetricQueueDepth).Set(float64(queued))
}

// reject writes the uniform JSON error body. The request ID comes from
// the response header the middleware set; a Retry-After header already
// set by the caller (the 429/503 paths) is mirrored into the body in
// milliseconds so JSON clients need not parse headers.
func (s *Server) reject(w http.ResponseWriter, code int, msg string) {
	resp := errorResponse{Error: msg, RequestID: w.Header().Get("X-Request-ID")}
	if ra := w.Header().Get("Retry-After"); ra != "" {
		if secs, err := strconv.ParseInt(ra, 10, 64); err == nil {
			resp.RetryAfterMS = secs * 1000
		}
	}
	writeJSON(w, code, resp)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// displayRows renders every cell exactly as the CLI table renderer
// displays it, so JSON and ?format=text consumers see the same values.
func displayRows(res *minisql.Result) [][]string {
	rows := make([][]string, len(res.Rows))
	for i, row := range res.Rows {
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = v.Display()
		}
		rows[i] = cells
	}
	return rows
}

// retryAfterSeconds formats the Retry-After header (whole seconds,
// minimum 1).
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}
