package obs

import (
	"sort"
	"sync"
	"time"
)

// LevelStats is one pass of a collected mining run, JSON-shaped for
// `tarmine -stats`.
type LevelStats struct {
	Level     int    `json:"level"`
	Generated int    `json:"generated"`
	Pruned    int    `json:"pruned"`
	Counted   int    `json:"counted"`
	Frequent  int    `json:"frequent"`
	Rows      int64  `json:"rows"`
	Backend   string `json:"backend,omitempty"`
	WallNS    int64  `json:"wall_ns"`
}

// TaskStats is one completed task span of a collected run.
type TaskStats struct {
	Name   string `json:"name"`
	WallNS int64  `json:"wall_ns"`
}

// MineStats is the structured result of a CollectTracer: everything a
// mining run reported, ready for JSON dumping or assertions.
type MineStats struct {
	// Statement is the TML statement behind the run, when one was (set
	// by the executor, not the tracer).
	Statement string `json:"statement,omitempty"`
	// Backend is the counting backend of the last level-wise pass that
	// named one ("scan" passes excluded) — the backend the run's auto
	// heuristic resolved to.
	Backend string `json:"backend,omitempty"`
	// Levels holds one entry per counting pass, in execution order. A
	// statement that builds several structures (e.g. MINE HISTORY)
	// appends all of their passes.
	Levels []LevelStats `json:"levels"`
	// Tasks holds the completed task spans in completion order.
	Tasks []TaskStats `json:"tasks,omitempty"`
	// Counters and Gauges accumulate every named metric the run
	// emitted (rules_emitted, granules_active, hold_cells, …).
	Counters map[string]int64   `json:"counters,omitempty"`
	Gauges   map[string]float64 `json:"gauges,omitempty"`
	// WallNS is the total wall time of the outermost task spans.
	WallNS int64 `json:"wall_ns"`
	// Summary holds p50/p95/p99 latency summaries over the run's pass
	// and operator durations; filled by Summarize.
	Summary map[string]LatencySummary `json:"summary,omitempty"`
}

// LatencySummary is the p50/p95/p99 of a set of sampled durations.
type LatencySummary struct {
	Count int     `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
}

// summarize computes a nearest-rank quantile summary over samples
// given in nanoseconds.
func summarize(ns []int64) LatencySummary {
	if len(ns) == 0 {
		return LatencySummary{}
	}
	sorted := append([]int64(nil), ns...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := func(q float64) float64 {
		i := int(q*float64(len(sorted))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return float64(sorted[i]) / 1e6
	}
	return LatencySummary{
		Count: len(sorted),
		P50MS: rank(0.50),
		P95MS: rank(0.95),
		P99MS: rank(0.99),
	}
}

// Summarize fills Summary with latency quantiles over the counting
// passes ("pass") and the plan operator spans ("op").
func (m *MineStats) Summarize() {
	var passes, ops []int64
	for _, l := range m.Levels {
		passes = append(passes, l.WallNS)
	}
	for _, t := range m.Tasks {
		if len(t.Name) > 3 && t.Name[:3] == "op:" {
			ops = append(ops, t.WallNS)
		}
	}
	m.Summary = make(map[string]LatencySummary, 2)
	if len(passes) > 0 {
		m.Summary["pass"] = summarize(passes)
	}
	if len(ops) > 0 {
		m.Summary["op"] = summarize(ops)
	}
}

// Level returns the stats of pass k, or nil.
func (m *MineStats) Level(k int) *LevelStats {
	for i := range m.Levels {
		if m.Levels[i].Level == k {
			return &m.Levels[i]
		}
	}
	return nil
}

// TotalFrequent sums the frequent survivors over all passes.
func (m *MineStats) TotalFrequent() int {
	n := 0
	for _, l := range m.Levels {
		n += l.Frequent
	}
	return n
}

// TotalGenerated sums the generated candidates over all passes.
func (m *MineStats) TotalGenerated() int {
	n := 0
	for _, l := range m.Levels {
		n += l.Generated
	}
	return n
}

// CollectTracer accumulates MineStats. It is safe for concurrent use
// and reusable: Reset clears it between runs.
type CollectTracer struct {
	mu    sync.Mutex
	stats MineStats
	spans []span // open task spans, innermost last
}

type span struct {
	name string
	t0   time.Time
}

// NewCollectTracer returns an empty collector.
func NewCollectTracer() *CollectTracer { return &CollectTracer{} }

// Enabled is always true.
func (c *CollectTracer) Enabled() bool { return true }

// StartTask opens a task span.
func (c *CollectTracer) StartTask(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.spans = append(c.spans, span{name: name, t0: time.Now()})
}

// EndTask closes the innermost span.
func (c *CollectTracer) EndTask() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.spans) == 0 {
		return
	}
	s := c.spans[len(c.spans)-1]
	c.spans = c.spans[:len(c.spans)-1]
	d := time.Since(s.t0).Nanoseconds()
	c.stats.Tasks = append(c.stats.Tasks, TaskStats{Name: s.name, WallNS: d})
	if len(c.spans) == 0 {
		c.stats.WallNS += d
	}
}

// ObserveSpan implements SpanObserver: the plan executor reports each
// operator's caller-timed duration here, and it replaces the duration
// the collector measured for the most recent task span of that name —
// so -stats JSON, EXPLAIN's observed section and the span tree all
// agree to the nanosecond.
func (c *CollectTracer) ObserveSpan(name string, d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := len(c.stats.Tasks) - 1; i >= 0; i-- {
		if c.stats.Tasks[i].Name == name {
			c.stats.Tasks[i].WallNS = d.Nanoseconds()
			return
		}
	}
}

// StartPass is a no-op: the miner times the pass and reports it whole
// in EndPass.
func (c *CollectTracer) StartPass(int) {}

// EndPass appends the pass.
func (c *CollectTracer) EndPass(ps PassStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Levels = append(c.stats.Levels, LevelStats{
		Level:     ps.Level,
		Generated: ps.Generated,
		Pruned:    ps.Pruned,
		Counted:   ps.Counted,
		Frequent:  ps.Frequent,
		Rows:      ps.Rows,
		Backend:   ps.Backend,
		WallNS:    ps.Duration.Nanoseconds(),
	})
	if ps.Backend != "" && ps.Backend != "scan" {
		c.stats.Backend = ps.Backend
	}
}

// Counter accumulates a named counter.
func (c *CollectTracer) Counter(name string, delta int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stats.Counters == nil {
		c.stats.Counters = make(map[string]int64)
	}
	c.stats.Counters[name] += delta
}

// Gauge records the latest value of a named gauge.
func (c *CollectTracer) Gauge(name string, v float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stats.Gauges == nil {
		c.stats.Gauges = make(map[string]float64)
	}
	c.stats.Gauges[name] = v
}

// Stats returns a copy of everything collected so far.
func (c *CollectTracer) Stats() *MineStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.stats
	out.Levels = append([]LevelStats(nil), c.stats.Levels...)
	out.Tasks = append([]TaskStats(nil), c.stats.Tasks...)
	if c.stats.Counters != nil {
		out.Counters = make(map[string]int64, len(c.stats.Counters))
		for k, v := range c.stats.Counters {
			out.Counters[k] = v
		}
	}
	if c.stats.Gauges != nil {
		out.Gauges = make(map[string]float64, len(c.stats.Gauges))
		for k, v := range c.stats.Gauges {
			out.Gauges[k] = v
		}
	}
	return &out
}

// Reset clears the collector for reuse.
func (c *CollectTracer) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats = MineStats{}
	c.spans = nil
}
