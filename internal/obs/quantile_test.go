package obs

import (
	"math"
	"strings"
	"testing"
)

// TestHistogramQuantile checks the bucket-interpolated estimate on a
// known distribution.
func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram p50 = %v, want 0", got)
	}
	// 100 samples uniform in (0,1]: every quantile lands inside the
	// first bucket, interpolated from 0 to 1.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100)
	}
	if got := h.Quantile(0.5); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("p50 = %v, want 0.5", got)
	}
	if got := h.Quantile(0.99); math.Abs(got-0.99) > 1e-9 {
		t.Fatalf("p99 = %v, want 0.99", got)
	}
	// An overflow sample clamps to the last finite bound.
	h2 := NewHistogram([]float64{1, 2})
	h2.Observe(100)
	if got := h2.Quantile(0.5); got != 2 {
		t.Fatalf("+Inf-bucket p50 = %v, want clamp to 2", got)
	}
}

// TestWritePromQuantiles: histograms with samples expose p50/p95/p99
// gauge lines; empty histograms do not.
func TestWritePromQuantiles(t *testing.T) {
	r := NewRegistry()
	r.Histogram("tarmd_statement_seconds").Observe(0.2)
	r.Histogram("tarmd_statement_seconds").Observe(0.4)
	r.Histogram("empty_hist") // registered, no samples
	var b strings.Builder
	r.WriteProm(&b)
	out := b.String()
	for _, want := range []string{
		"tarmd_statement_seconds_p50 ",
		"tarmd_statement_seconds_p95 ",
		"tarmd_statement_seconds_p99 ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "empty_hist_p50") {
		t.Error("empty histogram exposed a quantile line")
	}
}

// TestMineStatsSummarize: the -stats summary derives pass and operator
// quantiles from the collected samples.
func TestMineStatsSummarize(t *testing.T) {
	st := &MineStats{
		Levels: []LevelStats{{WallNS: 1e6}, {WallNS: 2e6}, {WallNS: 3e6}},
		Tasks: []TaskStats{
			{Name: "op:scan", WallNS: 4e6},
			{Name: "op:mine:cycles", WallNS: 8e6},
			{Name: "core.BuildHoldTable", WallNS: 99e6}, // not an op: excluded
		},
	}
	st.Summarize()
	pass, ok := st.Summary["pass"]
	if !ok || pass.Count != 3 {
		t.Fatalf("pass summary = %+v", st.Summary)
	}
	if pass.P50MS != 2 || pass.P99MS != 3 {
		t.Errorf("pass p50/p99 = %v/%v, want 2/3", pass.P50MS, pass.P99MS)
	}
	op := st.Summary["op"]
	if op.Count != 2 || op.P99MS != 8 {
		t.Errorf("op summary = %+v, want count 2 p99 8", op)
	}
	empty := &MineStats{}
	empty.Summarize()
	if len(empty.Summary) != 0 {
		t.Errorf("empty summary = %+v", empty.Summary)
	}
}
