package obs

import (
	"fmt"
	"io"
	"log/slog"
	"sync"
)

// LogTracer emits structured log lines through a slog.Logger.
type LogTracer struct {
	L *slog.Logger
}

// NewLogTracer wraps l (nil means slog.Default()).
func NewLogTracer(l *slog.Logger) *LogTracer {
	if l == nil {
		l = slog.Default()
	}
	return &LogTracer{L: l}
}

func (t *LogTracer) Enabled() bool { return true }

func (t *LogTracer) StartTask(name string) { t.L.Debug("task start", "task", name) }
func (t *LogTracer) EndTask()              { t.L.Debug("task end") }
func (t *LogTracer) StartPass(level int)   { t.L.Debug("pass start", "level", level) }

func (t *LogTracer) EndPass(ps PassStats) {
	t.L.Info("pass",
		"level", ps.Level,
		"generated", ps.Generated,
		"pruned", ps.Pruned,
		"counted", ps.Counted,
		"frequent", ps.Frequent,
		"rows", ps.Rows,
		"backend", ps.Backend,
		"ms", float64(ps.Duration.Microseconds())/1000,
	)
}

func (t *LogTracer) Counter(name string, delta int64) {
	t.L.Info("counter", "name", name, "delta", delta)
}

func (t *LogTracer) Gauge(name string, v float64) {
	t.L.Info("gauge", "name", name, "value", v)
}

// ProgressTracer renders live per-pass progress as human-readable
// lines, one per event that matters — the `tarmine -progress` view.
// Writes are serialised, so it is safe to share across workers.
type ProgressTracer struct {
	mu sync.Mutex
	w  io.Writer
	// indent tracks task nesting for readability.
	depth int
}

// NewProgressTracer writes progress lines to w (typically stderr).
func NewProgressTracer(w io.Writer) *ProgressTracer { return &ProgressTracer{w: w} }

func (t *ProgressTracer) Enabled() bool { return true }

func (t *ProgressTracer) printf(format string, args ...any) {
	pad := ""
	for i := 0; i < t.depth; i++ {
		pad += "  "
	}
	fmt.Fprintf(t.w, pad+format+"\n", args...)
}

func (t *ProgressTracer) StartTask(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.printf("▶ %s", name)
	t.depth++
}

func (t *ProgressTracer) EndTask() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.depth > 0 {
		t.depth--
	}
}

func (t *ProgressTracer) StartPass(int) {}

func (t *ProgressTracer) EndPass(ps PassStats) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.printf("L%d: %d candidates (%d pruned, %d counted) → %d frequent  [%s] rows=%d %.1fms",
		ps.Level, ps.Generated, ps.Pruned, ps.Counted, ps.Frequent,
		ps.Backend, ps.Rows, float64(ps.Duration.Microseconds())/1000)
}

func (t *ProgressTracer) Counter(name string, delta int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.printf("%s += %d", name, delta)
}

func (t *ProgressTracer) Gauge(name string, v float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.printf("%s = %g", name, v)
}
