package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	r.Counter("passes_total").Add(3)
	r.Counter("passes_total").Add(2)
	if got := r.Counter("passes_total").Value(); got != 5 {
		t.Errorf("counter = %d", got)
	}
	r.Gauge("active").Set(7)
	r.Gauge("active").Add(-2)
	if got := r.Gauge("active").Value(); got != 5 {
		t.Errorf("gauge = %g", got)
	}
	h := r.Histogram("pass_seconds")
	h.Observe(0.002)
	h.Observe(0.3)
	h.Observe(1000) // beyond the last bound → +Inf bucket
	if h.Count() != 3 {
		t.Errorf("hist count = %d", h.Count())
	}
	if h.Sum() < 1000 {
		t.Errorf("hist sum = %g", h.Sum())
	}

	var b strings.Builder
	r.WriteProm(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE passes_total counter", "passes_total 5",
		"# TYPE active gauge", "active 5",
		"# TYPE pass_seconds histogram",
		`pass_seconds_bucket{le="+Inf"} 3`,
		"pass_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q:\n%s", want, out)
		}
	}
	// Cumulative buckets: le="0.5" has seen 2 of the 3 samples.
	if !strings.Contains(out, `pass_seconds_bucket{le="0.5"} 2`) {
		t.Errorf("cumulative bucket wrong:\n%s", out)
	}

	snap := r.Snapshot()
	if snap["passes_total"] != int64(5) || snap["pass_seconds_count"] != int64(3) {
		t.Errorf("snapshot = %v", snap)
	}
}

func TestSanitizeMetricName(t *testing.T) {
	if got := sanitizeMetricName("tarm pass.ms-2"); got != "tarm_pass_ms_2" {
		t.Errorf("sanitize = %q", got)
	}
	if got := sanitizeMetricName("1x"); got != "_x" {
		t.Errorf("leading digit not replaced: %q", got)
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines so
// the race detector can vet the atomic paths (the CI race job runs it).
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("c").Add(1)
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(float64(i%7) / 100)
				if i%500 == 0 {
					r.WriteProm(io.Discard)
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != workers*iters {
		t.Errorf("counter lost updates: %d", got)
	}
	if got := r.Gauge("g").Value(); got != workers*iters {
		t.Errorf("gauge lost updates: %g", got)
	}
	if got := r.Histogram("h").Count(); got != workers*iters {
		t.Errorf("histogram lost updates: %d", got)
	}
}

func TestRegistryTracer(t *testing.T) {
	r := NewRegistry()
	tr := NewRegistryTracer(r, "")
	if tr.Prefix != "tarm" {
		t.Errorf("prefix = %q", tr.Prefix)
	}
	tr.StartTask("task:periods")
	tr.EndPass(PassStats{Level: 2, Generated: 10, Pruned: 4, Counted: 6, Frequent: 3, Rows: 500, Duration: 2 * time.Millisecond})
	tr.Counter(MetricRulesEmitted, 7)
	tr.Gauge(MetricGranulesActive, 30)
	tr.EndTask()
	if r.Counter("tarm_passes_total").Value() != 1 ||
		r.Counter("tarm_candidates_generated_total").Value() != 10 ||
		r.Counter("tarm_candidates_pruned_total").Value() != 4 ||
		r.Counter("tarm_candidates_counted_total").Value() != 6 ||
		r.Counter("tarm_itemsets_frequent_total").Value() != 3 ||
		r.Counter("tarm_rows_scanned_total").Value() != 500 ||
		r.Counter("tarm_rules_emitted_total").Value() != 7 ||
		r.Counter("tarm_tasks_total").Value() != 1 {
		t.Errorf("registry after tracer: %v", r.Snapshot())
	}
	if r.Gauge("tarm_granules_active").Value() != 30 {
		t.Errorf("gauge = %v", r.Gauge("tarm_granules_active").Value())
	}
	if r.Histogram("tarm_pass_seconds").Count() != 1 {
		t.Error("pass duration not observed")
	}
}

func TestDebugMux(t *testing.T) {
	r := NewRegistry()
	r.Counter("tarm_statements_total").Add(2)
	mux := DebugMux(r)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != 200 || !strings.Contains(body, "tarm_statements_total 2") {
		t.Errorf("/metrics: %d\n%s", code, body)
	}

	code, body = get("/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars: %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("expvar output not JSON: %v", err)
	}
	if _, ok := vars["tarm_metrics"]; !ok {
		t.Errorf("registry not published to expvar: %s", body)
	}

	if code, body = get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/: %d", code)
	}
}
