package obs

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestOrNopAndMulti(t *testing.T) {
	if OrNop(nil) != Nop {
		t.Error("OrNop(nil) is not Nop")
	}
	c := NewCollectTracer()
	if OrNop(c) != Tracer(c) {
		t.Error("OrNop(c) changed the tracer")
	}
	if Nop.Enabled() {
		t.Error("Nop reports enabled")
	}
	if Multi(nil, Nop) != Nop {
		t.Error("Multi of nothing live is not Nop")
	}
	if Multi(nil, c, Nop) != Tracer(c) {
		t.Error("Multi with one live tracer did not unwrap it")
	}
	m := Multi(c, NewCollectTracer())
	if !m.Enabled() {
		t.Error("multi tracer not enabled")
	}
	m.Counter("x", 2)
	if c.Stats().Counters["x"] != 2 {
		t.Error("multi did not fan out counter")
	}
}

func TestCollectTracer(t *testing.T) {
	c := NewCollectTracer()
	c.StartTask("outer")
	c.StartPass(1)
	c.EndPass(PassStats{Level: 1, Generated: 10, Counted: 10, Frequent: 4, Rows: 100, Backend: "scan", Duration: time.Millisecond})
	c.StartPass(2)
	c.EndPass(PassStats{Level: 2, Generated: 6, Pruned: 2, Counted: 4, Frequent: 3, Rows: 100, Backend: "bitmap"})
	c.Counter(MetricRulesEmitted, 5)
	c.Gauge(MetricGranulesActive, 28)
	c.StartTask("inner")
	c.EndTask()
	c.EndTask()

	st := c.Stats()
	if len(st.Levels) != 2 || st.Level(2) == nil || st.Level(3) != nil {
		t.Fatalf("levels = %+v", st.Levels)
	}
	if st.Backend != "bitmap" {
		t.Errorf("backend = %q (scan must not win)", st.Backend)
	}
	if st.Level(2).Pruned+st.Level(2).Counted != st.Level(2).Generated {
		t.Error("collected pass broke the generated invariant")
	}
	if st.TotalFrequent() != 7 || st.TotalGenerated() != 16 {
		t.Errorf("totals: frequent=%d generated=%d", st.TotalFrequent(), st.TotalGenerated())
	}
	if st.Counters[MetricRulesEmitted] != 5 || st.Gauges[MetricGranulesActive] != 28 {
		t.Errorf("counters/gauges: %v %v", st.Counters, st.Gauges)
	}
	if len(st.Tasks) != 2 || st.Tasks[0].Name != "inner" || st.Tasks[1].Name != "outer" {
		t.Errorf("tasks = %+v", st.Tasks)
	}
	if st.WallNS <= 0 {
		t.Error("outer span contributed no wall time")
	}

	// Stats returns a copy: mutating the collector must not alter it.
	c.Counter(MetricRulesEmitted, 1)
	if st.Counters[MetricRulesEmitted] != 5 {
		t.Error("Stats result aliases collector state")
	}

	c.Reset()
	if got := c.Stats(); len(got.Levels) != 0 || len(got.Counters) != 0 {
		t.Errorf("Reset left state: %+v", got)
	}

	// EndTask with no open span must not panic.
	c.EndTask()
}

func TestLogTracer(t *testing.T) {
	var buf bytes.Buffer
	lt := NewLogTracer(slog.New(slog.NewTextHandler(&buf, nil)))
	lt.StartTask("apriori.Mine")
	lt.EndPass(PassStats{Level: 2, Generated: 8, Pruned: 3, Counted: 5, Frequent: 2, Backend: "hashtree"})
	lt.Counter("rules_emitted", 3)
	lt.Gauge("granules", 12)
	lt.EndTask()
	out := buf.String()
	for _, want := range []string{"level=2", "generated=8", "pruned=3", "frequent=2", "backend=hashtree", "rules_emitted", "granules"} {
		if !strings.Contains(out, want) {
			t.Errorf("log output missing %q:\n%s", want, out)
		}
	}
	if NewLogTracer(nil).L == nil {
		t.Error("nil logger not defaulted")
	}
}

func TestProgressTracer(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgressTracer(&buf)
	p.StartTask("core.BuildHoldTable")
	p.EndPass(PassStats{Level: 2, Generated: 20, Pruned: 5, Counted: 15, Frequent: 7, Rows: 1000, Backend: "bitmap"})
	p.Counter("rules_emitted", 4)
	p.EndTask()
	out := buf.String()
	for _, want := range []string{"core.BuildHoldTable", "L2:", "20 candidates", "5 pruned", "7 frequent", "bitmap", "rules_emitted += 4"} {
		if !strings.Contains(out, want) {
			t.Errorf("progress output missing %q:\n%s", want, out)
		}
	}
	// Pass lines are indented under the task.
	if !strings.Contains(out, "\n  L2:") {
		t.Errorf("pass line not nested under task:\n%s", out)
	}
}
