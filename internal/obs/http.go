package obs

import (
	"expvar"
	"net/http"
	"net/http/pprof"
)

// MetricsHandler serves the registry in the Prometheus text format.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteProm(w)
	})
}

// DebugMux builds the diagnostics endpoint map served by
// `iqms -metrics`:
//
//	/metrics       Prometheus text exposition of reg
//	/debug/vars    expvar JSON (includes the registry snapshot)
//	/debug/pprof/  the standard pprof profiles
//
// The registry is also published under the expvar name "tarm_metrics".
func DebugMux(reg *Registry) *http.ServeMux {
	if reg == nil {
		reg = Default
	}
	reg.PublishExpvar("tarm_metrics")
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.MetricsHandler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
