package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonic atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic point-in-time float value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add atomically adds delta to the gauge.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// defBuckets are the default histogram bounds: exponential seconds from
// 1ms to ~100s, sized for mining-pass durations.
var defBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100}

// Histogram is a fixed-bucket atomic histogram (cumulative counts in
// the Prometheus style).
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64
}

// NewHistogram builds a histogram over the given ascending upper
// bounds; nil selects the default duration buckets.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = defBuckets
	}
	return &Histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		s := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket
// counts by linear interpolation inside the target bucket, the same
// estimate Prometheus's histogram_quantile computes server-side.
// Samples in the +Inf bucket clamp to the last finite bound; an empty
// histogram reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := int64(0)
	for i, ub := range h.bounds {
		n := h.buckets[i].Load()
		if float64(cum+n) >= rank {
			lb := 0.0
			if i > 0 {
				lb = h.bounds[i-1]
			}
			if n == 0 {
				return ub
			}
			return lb + (ub-lb)*(rank-float64(cum))/float64(n)
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// Registry is a process-wide set of named metrics. All operations are
// safe for concurrent use; reads during writes see a consistent
// point-in-time value per metric.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Default is the process-wide registry the CLI front ends publish.
var Default = NewRegistry()

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram with the
// default buckets.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = NewHistogram(nil)
		r.hists[name] = h
	}
	return h
}

// sanitizeMetricName maps a metric name onto the Prometheus charset.
func sanitizeMetricName(s string) string {
	var b strings.Builder
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteRune(c)
		case c >= '0' && c <= '9' && i > 0:
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WriteProm writes the registry in the Prometheus text exposition
// format, metrics sorted by name.
func (r *Registry) WriteProm(w io.Writer) {
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.RUnlock()

	names := make([]string, 0, len(counters))
	for n := range counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := sanitizeMetricName(n)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, counters[n].Value())
	}

	names = names[:0]
	for n := range gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := sanitizeMetricName(n)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", pn, pn, gauges[n].Value())
	}

	names = names[:0]
	for n := range hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := hists[n]
		pn := sanitizeMetricName(n)
		fmt.Fprintf(w, "# TYPE %s histogram\n", pn)
		cum := int64(0)
		for i, ub := range h.bounds {
			cum += h.buckets[i].Load()
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, trimFloat(ub), cum)
		}
		cum += h.buckets[len(h.bounds)].Load()
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, cum)
		fmt.Fprintf(w, "%s_sum %g\n", pn, h.Sum())
		fmt.Fprintf(w, "%s_count %d\n", pn, h.Count())
		// Pre-computed quantile summaries, so operators without a
		// Prometheus server (curl /metrics) still see tail latency.
		if h.Count() > 0 {
			fmt.Fprintf(w, "# TYPE %s_p50 gauge\n%s_p50 %g\n", pn, pn, h.Quantile(0.50))
			fmt.Fprintf(w, "# TYPE %s_p95 gauge\n%s_p95 %g\n", pn, pn, h.Quantile(0.95))
			fmt.Fprintf(w, "# TYPE %s_p99 gauge\n%s_p99 %g\n", pn, pn, h.Quantile(0.99))
		}
	}
}

func trimFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", v), "0"), ".")
}

// Snapshot returns every metric as a flat name→value map (histograms
// contribute _sum and _count); the expvar view.
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for n, c := range r.counters {
		out[n] = c.Value()
	}
	for n, g := range r.gauges {
		out[n] = g.Value()
	}
	for n, h := range r.hists {
		out[n+"_sum"] = h.Sum()
		out[n+"_count"] = h.Count()
	}
	return out
}

// expvarMu serialises publication checks: expvar panics on duplicate
// names, and the process-wide namespace is shared by every registry.
var expvarMu sync.Mutex

// PublishExpvar publishes the registry under the given expvar name.
// The first registry to claim a name wins; later calls (from any
// registry) are no-ops, since expvar forbids re-publishing.
func (r *Registry) PublishExpvar(name string) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// RegistryTracer folds tracer events into a Registry so a long-running
// process (the IQMS server) exposes live mining metrics. Metric names
// are prefixed, e.g. prefix "tarm" yields tarm_passes_total.
type RegistryTracer struct {
	R      *Registry
	Prefix string
}

// NewRegistryTracer returns a tracer feeding r (nil means Default)
// under the given prefix (empty means "tarm").
func NewRegistryTracer(r *Registry, prefix string) *RegistryTracer {
	if r == nil {
		r = Default
	}
	if prefix == "" {
		prefix = "tarm"
	}
	return &RegistryTracer{R: r, Prefix: prefix}
}

func (t *RegistryTracer) name(s string) string { return t.Prefix + "_" + s }

func (t *RegistryTracer) Enabled() bool { return true }

func (t *RegistryTracer) StartTask(name string) {
	t.R.Counter(t.name("tasks_total")).Add(1)
}

func (t *RegistryTracer) EndTask() {}

// ObserveSpan records a caller-timed span (a plan operator) as a named
// duration histogram, e.g. span "op:mine:periods" under prefix "tarm"
// becomes tarm_span_seconds_op:mine:periods on /metrics.
func (t *RegistryTracer) ObserveSpan(name string, d time.Duration) {
	t.R.Histogram(t.name("span_seconds_" + name)).Observe(d.Seconds())
}

func (t *RegistryTracer) StartPass(int) {}

func (t *RegistryTracer) EndPass(ps PassStats) {
	t.R.Counter(t.name("passes_total")).Add(1)
	t.R.Counter(t.name("candidates_generated_total")).Add(int64(ps.Generated))
	t.R.Counter(t.name("candidates_pruned_total")).Add(int64(ps.Pruned))
	t.R.Counter(t.name("candidates_counted_total")).Add(int64(ps.Counted))
	t.R.Counter(t.name("itemsets_frequent_total")).Add(int64(ps.Frequent))
	t.R.Counter(t.name("rows_scanned_total")).Add(ps.Rows)
	t.R.Histogram(t.name("pass_seconds")).Observe(ps.Duration.Seconds())
}

func (t *RegistryTracer) Counter(name string, delta int64) {
	t.R.Counter(t.name(name) + "_total").Add(delta)
}

func (t *RegistryTracer) Gauge(name string, v float64) {
	t.R.Gauge(t.name(name)).Set(v)
}
