// Package obs is the observability layer of the mining system: a
// zero-dependency tracer for the level-wise mining passes, plus a
// process-wide metrics registry published over expvar and a
// Prometheus-style text endpoint.
//
// The miners (apriori.Mine, core.BuildHoldTable, the task drivers and
// the TML executor) accept a Tracer through their configs and report
// span-style events at *pass* granularity — a handful of calls per
// mining run, never per transaction — so the instrumented hot paths
// cost nothing measurable when the tracer is Nop (guarded by
// BenchmarkTracerOverhead in internal/bench).
//
// Tracer implementations:
//
//   - NopTracer: discards everything; Enabled() is false so callers can
//     skip even the cheap stat assembly.
//   - CollectTracer: accumulates a structured MineStats (per-level
//     candidate/prune/frequent counts, backend, wall time; per-task
//     spans and counters), the payload behind `tarmine -stats`.
//   - LogTracer: structured log/slog lines.
//   - ProgressTracer: human-readable per-pass lines, the payload behind
//     `tarmine -progress`.
//   - RegistryTracer: folds events into a metrics Registry, the payload
//     behind `iqms -metrics`.
//
// Multiple tracers compose with Multi.
package obs

import "time"

// PassStats describes one completed level-wise counting pass. The
// invariants every miner maintains (and the equivalence tests assert):
// Pruned + Counted == Generated, and Frequent ≤ Counted.
type PassStats struct {
	// Level is the itemset size k of the pass (1 is the initial item
	// scan).
	Level int
	// Generated is the number of candidates produced by the join before
	// the apriori subset prune (for level 1: distinct items seen).
	Generated int
	// Pruned is the number of candidates removed by the apriori prune
	// without being counted.
	Pruned int
	// Counted is the number of candidates whose support was counted.
	Counted int
	// Frequent is the number of candidates at/above the threshold
	// (for the hold table: frequent in at least one active granule).
	Frequent int
	// Rows is the number of transactions scanned by the pass.
	Rows int64
	// Backend names the counting backend that ran the pass ("scan" for
	// the level-1 item scan).
	Backend string
	// Duration is the wall time of the pass.
	Duration time.Duration
}

// Tracer receives span-style events from a mining run. Implementations
// must be safe for concurrent use: worker pools may emit counters from
// several goroutines.
type Tracer interface {
	// Enabled reports whether events are consumed at all; miners may
	// skip assembling stats when false.
	Enabled() bool
	// StartTask opens a named span ("apriori.Mine", "task:periods", …).
	// Spans nest; EndTask closes the innermost open span.
	StartTask(name string)
	// EndTask closes the innermost open span.
	EndTask()
	// StartPass marks the beginning of the level-k counting pass.
	StartPass(level int)
	// EndPass delivers the completed pass's statistics.
	EndPass(ps PassStats)
	// Counter adds delta to a named monotonic counter (e.g.
	// "rules_emitted").
	Counter(name string, delta int64)
	// Gauge sets a named point-in-time value (e.g. "granules_active").
	Gauge(name string, v float64)
}

// The task vocabulary shared by the planner, the task drivers and the
// EXPLAIN renderer: one short key per mining task, used to derive span
// names ("task:periods"), plan operator names ("mine:periods") and
// metric labels, so every layer reports the same work under the same
// word.
const (
	TaskTraditional = "traditional"
	TaskDuring      = "during"
	TaskPeriods     = "periods"
	TaskCycles      = "cycles"
	TaskCalendars   = "calendars"
	TaskHistory     = "history"
	// TaskSubscribe labels subscription-lifecycle journal records (the
	// registration of a standing statement); each refresh the statement
	// runs journals under its own mining task.
	TaskSubscribe = "subscribe"
)

// TaskSpan names the tracer span of one mining task driver, e.g.
// TaskSpan(TaskPeriods) == "task:periods".
func TaskSpan(task string) string { return "task:" + task }

// OpSpan names the tracer span of one plan operator, e.g.
// OpSpan("mine:periods") == "op:mine:periods".
func OpSpan(op string) string { return "op:" + op }

// Metric names shared by the miners, the collectors and the registry.
const (
	MetricRows             = "rows_scanned"      // transactions scanned (counter)
	MetricRulesEmitted     = "rules_emitted"     // rules a task driver returned (counter)
	MetricGranules         = "granules"          // span length of a hold-table build (gauge)
	MetricGranulesActive   = "granules_active"   // active granules of a hold-table build (gauge)
	MetricGranulesDirty    = "granules_dirty"    // dirty granules recounted by a delta maintenance (gauge)
	MetricHoldCells        = "hold_cells"        // itemsets × granules retained by a hold table (gauge)
	MetricItemsetsFrequent = "itemsets_frequent" // frequent (or granule-frequent) itemsets (counter)
	MetricStatements       = "statements"        // TML statements executed (counter)

	// Counting cost model (apriori cost.go) events: the model's
	// predicted cost for the backend that ran, in abstract word-op
	// units, and the observed wall time of the counting passes.
	MetricCountingPredictedCost = "counting_predicted_cost" // predicted cost of the chosen backend (gauge)
	MetricCountingObservedNS    = "counting_observed_ns"    // observed counting wall time in ns (gauge)

	// Hold-table cache (core.HoldCache) events.
	MetricCacheHits          = "holdcache_hits"           // exact-threshold cache hits (counter)
	MetricCacheRethresholds  = "holdcache_rethresholds"   // monotone re-threshold hits (counter)
	MetricCacheMisses        = "holdcache_misses"         // misses that triggered a build (counter)
	MetricCacheDedups        = "holdcache_dedups"         // statements that joined an in-flight build (counter)
	MetricCacheEvictions     = "holdcache_evictions"      // entries evicted for space (counter)
	MetricCacheDeltas        = "holdcache_deltas"         // stale entries refreshed by delta maintenance (counter)
	MetricCacheInvalidations = "holdcache_invalidations"  // entries dropped on table writes (counter)
	MetricCacheResidentCells = "holdcache_resident_cells" // itemsets × granules resident in the cache (gauge)
)

// NopTracer discards all events.
type NopTracer struct{}

// Nop is the shared no-op tracer; OrNop returns it for nil tracers.
var Nop Tracer = NopTracer{}

func (NopTracer) Enabled() bool         { return false }
func (NopTracer) StartTask(string)      {}
func (NopTracer) EndTask()              {}
func (NopTracer) StartPass(int)         {}
func (NopTracer) EndPass(PassStats)     {}
func (NopTracer) Counter(string, int64) {}
func (NopTracer) Gauge(string, float64) {}

// SpanObserver is an optional Tracer extension: tracers implementing
// it receive completed span durations measured by the caller (the plan
// executor times each operator itself), so multi-session sinks like
// the metrics registry can record per-span timings without keeping a
// span stack of their own.
type SpanObserver interface {
	ObserveSpan(name string, d time.Duration)
}

// ObserveSpan forwards a completed span to every tracer in t (or the
// single tracer) that implements SpanObserver. Nil and nop tracers are
// ignored.
func ObserveSpan(t Tracer, name string, d time.Duration) {
	switch v := t.(type) {
	case nil:
	case multiTracer:
		for _, m := range v {
			if o, ok := m.(SpanObserver); ok {
				o.ObserveSpan(name, d)
			}
		}
	default:
		if o, ok := v.(SpanObserver); ok {
			o.ObserveSpan(name, d)
		}
	}
}

// OrNop maps nil to the shared no-op tracer so miners can call
// unconditionally.
func OrNop(t Tracer) Tracer {
	if t == nil {
		return Nop
	}
	return t
}

// Multi fans events out to every non-nil, non-nop tracer. It returns
// Nop when nothing is left and the sole tracer unwrapped when only one
// is.
func Multi(ts ...Tracer) Tracer {
	var live []Tracer
	for _, t := range ts {
		if t == nil || !t.Enabled() {
			continue
		}
		live = append(live, t)
	}
	switch len(live) {
	case 0:
		return Nop
	case 1:
		return live[0]
	}
	return multiTracer(live)
}

type multiTracer []Tracer

func (m multiTracer) Enabled() bool { return true }
func (m multiTracer) StartTask(name string) {
	for _, t := range m {
		t.StartTask(name)
	}
}
func (m multiTracer) EndTask() {
	for _, t := range m {
		t.EndTask()
	}
}
func (m multiTracer) StartPass(level int) {
	for _, t := range m {
		t.StartPass(level)
	}
}
func (m multiTracer) EndPass(ps PassStats) {
	for _, t := range m {
		t.EndPass(ps)
	}
}
func (m multiTracer) Counter(name string, delta int64) {
	for _, t := range m {
		t.Counter(name, delta)
	}
}
func (m multiTracer) Gauge(name string, v float64) {
	for _, t := range m {
		t.Gauge(name, v)
	}
}
