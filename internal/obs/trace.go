package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Trace is one request-scoped span tree: the execution record of a
// single statement, from the server middleware (or a CLI front end)
// down through the plan operators, the hold-table build and the
// level-wise counting passes.
//
// A Trace is carried through the layers two ways at once:
//
//   - via context.Context (ContextWithTrace / TraceFromContext), which
//     is how the server middleware hands it to the TML executor, how
//     plan.Execute annotates operator spans with their EXPLAIN details,
//     and how the journal shows an in-flight statement's current span;
//   - as a Tracer in the statement's tracer fan-out, which is how it
//     hears the existing span-granularity event stream — StartTask/
//     EndTask pairs become spans, StartPass/EndPass pairs become
//     "pass:Lk" spans carrying the pass statistics as attributes —
//     without any new plumbing through the miners.
//
// Statements without a Trace in their context pay nothing: the miners
// emit to whatever tracer they already had, and a nil *Trace is a
// disabled Tracer (Enabled reports false), so obs.Multi drops it.
//
// All methods are safe for concurrent use and safe on a nil receiver.
type Trace struct {
	id string

	mu      sync.Mutex
	spans   []*Span // in start order
	open    []*Span // stack of unfinished spans, innermost last
	dropped int
}

// Span is one timed unit of work inside a Trace. IDs are sequential
// within the trace ("s1", "s2", …), so a span tree is reproducible in
// tests; the trace ID provides the global uniqueness.
type Span struct {
	ID       string
	Parent   string // parent span ID, "" for a root
	Name     string
	Start    time.Time
	Duration time.Duration
	Attrs    map[string]string
	ended    bool
}

// maxTraceSpans bounds one trace's memory: a mining statement emits a
// few dozen spans (operators, build, passes), so the cap only engages
// on pathological statements; excess spans are counted, not stored.
const maxTraceSpans = 2048

// SpanStatement names the root span the TML executor opens around a
// whole statement.
const SpanStatement = "statement"

// NewTraceID returns a fresh 16-hex-digit random trace ID.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; fall back to the
		// clock rather than refusing to serve.
		return strconv.FormatInt(time.Now().UnixNano(), 16)
	}
	return hex.EncodeToString(b[:])
}

// NewTrace starts an empty trace under the given ID ("" generates one).
func NewTrace(id string) *Trace {
	if id == "" {
		id = NewTraceID()
	}
	return &Trace{id: id}
}

// ID returns the trace ID ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

type traceCtxKey struct{}

// ContextWithTrace attaches t to ctx; a nil t returns ctx unchanged.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, t)
}

// TraceFromContext returns the trace carried by ctx, or nil.
func TraceFromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return t
}

// startSpan opens a child of the innermost open span. Caller holds t.mu.
func (t *Trace) startSpanLocked(name string) *Span {
	if len(t.spans) >= maxTraceSpans {
		t.dropped++
		return nil
	}
	s := &Span{
		ID:    "s" + strconv.Itoa(len(t.spans)+1),
		Name:  name,
		Start: time.Now(),
	}
	if n := len(t.open); n > 0 {
		s.Parent = t.open[n-1].ID
	}
	t.spans = append(t.spans, s)
	t.open = append(t.open, s)
	return s
}

// endSpanLocked closes the innermost open span. Caller holds t.mu.
func (t *Trace) endSpanLocked() {
	n := len(t.open)
	if n == 0 {
		return
	}
	s := t.open[n-1]
	t.open = t.open[:n-1]
	s.Duration = time.Since(s.Start)
	s.ended = true
}

// Enabled implements Tracer; a nil trace is disabled, so obs.Multi
// drops it from the fan-out.
func (t *Trace) Enabled() bool { return t != nil }

// StartTask opens a span named after the task.
func (t *Trace) StartTask(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.startSpanLocked(name)
	t.mu.Unlock()
}

// EndTask closes the innermost open span.
func (t *Trace) EndTask() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.endSpanLocked()
	t.mu.Unlock()
}

// StartPass opens the span of the level-k counting pass ("pass:Lk").
func (t *Trace) StartPass(level int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.startSpanLocked("pass:L" + strconv.Itoa(level))
	t.mu.Unlock()
}

// EndPass closes the pass span opened by StartPass and records the
// pass statistics as span attributes.
func (t *Trace) EndPass(ps PassStats) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.open)
	if n == 0 {
		return
	}
	s := t.open[n-1]
	if s.Name != "pass:L"+strconv.Itoa(ps.Level) {
		// An EndPass without its StartPass (a tracer driven by hand);
		// don't close an unrelated span.
		return
	}
	s.setAttr("generated", strconv.Itoa(ps.Generated))
	s.setAttr("pruned", strconv.Itoa(ps.Pruned))
	s.setAttr("counted", strconv.Itoa(ps.Counted))
	s.setAttr("frequent", strconv.Itoa(ps.Frequent))
	s.setAttr("rows", strconv.FormatInt(ps.Rows, 10))
	if ps.Backend != "" {
		s.setAttr("backend", ps.Backend)
	}
	t.open = t.open[:n-1]
	s.Duration = time.Since(s.Start)
	s.ended = true
}

// Counter accumulates a named counter as an attribute of the innermost
// open span (worker goroutines may emit concurrently; attribution is
// to whatever span the statement has open, which is the one doing the
// work at statement granularity).
func (t *Trace) Counter(name string, delta int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.open)
	if n == 0 {
		return
	}
	s := t.open[n-1]
	prev, _ := strconv.ParseInt(s.Attrs[name], 10, 64)
	s.setAttr(name, strconv.FormatInt(prev+delta, 10))
}

// Gauge records the latest value of a named gauge as an attribute of
// the innermost open span.
func (t *Trace) Gauge(name string, v float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n := len(t.open); n > 0 {
		t.open[n-1].setAttr(name, strconv.FormatFloat(v, 'g', -1, 64))
	}
}

// SetAttr sets an attribute on the innermost open span (no-op when no
// span is open). The plan executor uses it to copy each operator's
// EXPLAIN details onto its span.
func (t *Trace) SetAttr(key, val string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n := len(t.open); n > 0 {
		t.open[n-1].setAttr(key, val)
	}
}

func (s *Span) setAttr(key, val string) {
	if s.Attrs == nil {
		s.Attrs = make(map[string]string, 4)
	}
	s.Attrs[key] = val
}

// ObserveSpan implements SpanObserver: the plan executor times each
// operator itself and reports the duration here, so the span tree, the
// EXPLAIN observed section and the metrics histograms all carry the
// identical caller-measured number for op:* spans.
func (t *Trace) ObserveSpan(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := len(t.spans) - 1; i >= 0; i-- {
		if s := t.spans[i]; s.ended && s.Name == name {
			s.Duration = d
			return
		}
	}
}

// Current returns the name of the innermost open span — the operator
// or pass an in-flight statement is executing right now — or "".
func (t *Trace) Current() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n := len(t.open); n > 0 {
		return t.open[n-1].Name
	}
	return ""
}

// Dropped reports how many spans the cap discarded.
func (t *Trace) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// SpanNode is the JSON shape of one span in a rendered tree. Times are
// milliseconds: StartMS is the offset from the trace's first span.
type SpanNode struct {
	SpanID   string            `json:"span_id"`
	Name     string            `json:"name"`
	StartMS  float64           `json:"start_ms"`
	WallMS   float64           `json:"wall_ms"`
	Open     bool              `json:"open,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []*SpanNode       `json:"children,omitempty"`
}

// Tree snapshots the trace as a span forest (one root per top-level
// span; a statement trace has a single "statement" root). Open spans
// are included with their elapsed-so-far duration and Open set, so an
// in-flight statement renders a live partial tree. Safe on nil.
func (t *Trace) Tree() []*SpanNode {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) == 0 {
		return nil
	}
	t0 := t.spans[0].Start
	nodes := make(map[string]*SpanNode, len(t.spans))
	var roots []*SpanNode
	for _, s := range t.spans {
		d := s.Duration
		if !s.ended {
			d = time.Since(s.Start)
		}
		n := &SpanNode{
			SpanID:  s.ID,
			Name:    s.Name,
			StartMS: float64(s.Start.Sub(t0)) / 1e6,
			WallMS:  float64(d) / 1e6,
			Open:    !s.ended,
		}
		if len(s.Attrs) > 0 {
			n.Attrs = make(map[string]string, len(s.Attrs))
			for k, v := range s.Attrs {
				n.Attrs[k] = v
			}
		}
		nodes[s.ID] = n
		if p := nodes[s.Parent]; p != nil {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	return roots
}

// Find returns the first node named name in a depth-first walk of the
// forest, or nil — the lookup tests and front ends use to pick one
// operator span out of a tree.
func Find(forest []*SpanNode, name string) *SpanNode {
	for _, n := range forest {
		if n.Name == name {
			return n
		}
		if c := Find(n.Children, name); c != nil {
			return c
		}
	}
	return nil
}

// WriteText renders the trace as an indented tree with durations and
// attributes — the payload of iqms's \trace and tarmine's -trace.
func (t *Trace) WriteText(w io.Writer) {
	if t == nil {
		fmt.Fprintln(w, "(no trace)")
		return
	}
	forest := t.Tree()
	n := 0
	var count func(ns []*SpanNode)
	count = func(ns []*SpanNode) {
		for _, x := range ns {
			n++
			count(x.Children)
		}
	}
	count(forest)
	fmt.Fprintf(w, "trace %s (%d span(s))\n", t.ID(), n)
	if len(forest) == 0 {
		fmt.Fprintln(w, "(no spans recorded)")
		return
	}
	for _, root := range forest {
		writeNode(w, root, "", true, true)
	}
}

// writeNode renders one node and its subtree with box-drawing guides.
func writeNode(w io.Writer, n *SpanNode, prefix string, last, root bool) {
	marker, childPrefix := "", ""
	if !root {
		if last {
			marker, childPrefix = "└─ ", prefix+"   "
		} else {
			marker, childPrefix = "├─ ", prefix+"│  "
		}
	} else {
		childPrefix = prefix
	}
	open := ""
	if n.Open {
		open = " (open)"
	}
	fmt.Fprintf(w, "%s%s%s %.1fms%s%s\n", prefix, marker, n.Name, n.WallMS, open, attrSuffix(n.Attrs))
	for i, c := range n.Children {
		writeNode(w, c, childPrefix, i == len(n.Children)-1, false)
	}
}

// attrSuffix renders attributes as " (k=v, k=v)" in sorted key order.
func attrSuffix(attrs map[string]string) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := " ("
	for i, k := range keys {
		if i > 0 {
			out += ", "
		}
		out += k + "=" + attrs[k]
	}
	return out + ")"
}
