package obs

import (
	"encoding/json"
	"io"
	"log/slog"
	"strconv"
	"sync"
	"time"
)

// Journal is the server-wide query history: a bounded ring of
// completed-statement records plus a live table of in-flight
// statements. Every record carries the trace ID, so a slow statement
// seen in `GET /v1/queries` can be drilled into via
// `GET /v1/queries/{id}` for its full span tree.
//
// A nil *Journal is a disabled journal: Begin returns a nil
// *InflightQuery whose End is a no-op, so callers never branch.
type Journal struct {
	size     int
	slowOver time.Duration
	slowLog  *slog.Logger
	sink     io.Writer

	mu       sync.Mutex
	ring     []*QueryRecord // circular, next points at the oldest slot
	next     int
	total    int64 // completed records ever, = last Seq
	seq      int64 // sequence source (issued at Begin)
	inflight map[int64]*InflightQuery
}

// JournalConfig sizes and wires a Journal.
type JournalConfig struct {
	// Size is the ring capacity in records (0 = DefaultJournalSize).
	Size int
	// SlowThreshold, when positive, logs a structured warning for any
	// statement whose wall time exceeds it.
	SlowThreshold time.Duration
	// SlowLog receives the slow-statement lines (nil = slog.Default()).
	SlowLog *slog.Logger
	// Sink, when set, receives every completed record as one JSON line.
	Sink io.Writer
}

// DefaultJournalSize is the ring capacity when JournalConfig.Size is 0.
const DefaultJournalSize = 128

// NewJournal builds a journal from cfg.
func NewJournal(cfg JournalConfig) *Journal {
	size := cfg.Size
	if size <= 0 {
		size = DefaultJournalSize
	}
	logger := cfg.SlowLog
	if logger == nil {
		logger = slog.Default()
	}
	return &Journal{
		size:     size,
		slowOver: cfg.SlowThreshold,
		slowLog:  logger,
		sink:     cfg.Sink,
		ring:     make([]*QueryRecord, 0, size),
		inflight: make(map[int64]*InflightQuery),
	}
}

// OpWall is one plan operator's caller-measured wall time.
type OpWall struct {
	Op     string  `json:"op"`
	WallMS float64 `json:"wall_ms"`
}

// QueryRecord is one completed statement in the ring. Spans holds the
// full trace tree; list views strip it to keep `GET /v1/queries` small.
type QueryRecord struct {
	Seq              int64       `json:"seq"`
	TraceID          string      `json:"trace_id,omitempty"`
	Statement        string      `json:"statement"`
	Task             string      `json:"task,omitempty"`
	Start            time.Time   `json:"start"`
	WallMS           float64     `json:"wall_ms"`
	Cache            string      `json:"cache,omitempty"`   // hit, rethreshold, delta, dedup, cold, ""
	Backend          string      `json:"backend,omitempty"` // backend that counted
	PredictedBackend string      `json:"predicted_backend,omitempty"`
	PredictedCost    float64     `json:"predicted_cost,omitempty"`
	CountingMS       float64     `json:"counting_ms,omitempty"`
	Ops              []OpWall    `json:"ops,omitempty"`
	Rules            int64       `json:"rules"`
	Itemsets         int64       `json:"itemsets"`
	Rows             int         `json:"rows"`
	Error            string      `json:"error,omitempty"`
	Spans            []*SpanNode `json:"spans,omitempty"`
}

// stripSpans returns a shallow copy without the span tree, for list
// views.
func (r *QueryRecord) stripSpans() *QueryRecord {
	c := *r
	c.Spans = nil
	return &c
}

// QueryOutcome is what the executor knows once a statement finishes;
// End folds it into the ring record.
type QueryOutcome struct {
	Cache            string
	Backend          string
	PredictedBackend string
	PredictedCost    float64
	CountingMS       float64
	Ops              []OpWall
	Rules            int64
	Itemsets         int64
	Rows             int
	Err              error
}

// InflightQuery is the live handle for one executing statement: the
// journal's in-flight table entry, completed by End.
type InflightQuery struct {
	j     *Journal
	seq   int64
	trace *Trace
	stmt  string
	task  string
	start time.Time
}

// InflightInfo is the JSON shape of one in-flight statement.
type InflightInfo struct {
	Seq       int64     `json:"seq"`
	TraceID   string    `json:"trace_id,omitempty"`
	Statement string    `json:"statement"`
	Task      string    `json:"task,omitempty"`
	Start     time.Time `json:"start"`
	ElapsedMS float64   `json:"elapsed_ms"`
	Current   string    `json:"current,omitempty"` // innermost open span
}

// Begin registers a statement as in-flight and returns its handle.
// Nil-safe: a nil journal returns a nil handle whose End is a no-op.
func (j *Journal) Begin(trace *Trace, statement, task string) *InflightQuery {
	if j == nil {
		return nil
	}
	q := &InflightQuery{
		j:     j,
		trace: trace,
		stmt:  statement,
		task:  task,
		start: time.Now(),
	}
	j.mu.Lock()
	j.seq++
	q.seq = j.seq
	j.inflight[q.seq] = q
	j.mu.Unlock()
	return q
}

// End completes the statement: removes it from the in-flight table,
// snapshots the trace's span tree into a ring record, emits the JSONL
// sink line and the slow-statement log line, and returns the record.
func (q *InflightQuery) End(out QueryOutcome) *QueryRecord {
	if q == nil {
		return nil
	}
	wall := time.Since(q.start)
	rec := &QueryRecord{
		Seq:              q.seq,
		TraceID:          q.trace.ID(),
		Statement:        q.stmt,
		Task:             q.task,
		Start:            q.start,
		WallMS:           float64(wall) / 1e6,
		Cache:            out.Cache,
		Backend:          out.Backend,
		PredictedBackend: out.PredictedBackend,
		PredictedCost:    out.PredictedCost,
		CountingMS:       out.CountingMS,
		Ops:              out.Ops,
		Rules:            out.Rules,
		Itemsets:         out.Itemsets,
		Rows:             out.Rows,
		Spans:            q.trace.Tree(),
	}
	if out.Err != nil {
		rec.Error = out.Err.Error()
	}

	j := q.j
	var sink io.Writer
	j.mu.Lock()
	delete(j.inflight, q.seq)
	if len(j.ring) < j.size {
		j.ring = append(j.ring, rec)
	} else {
		j.ring[j.next] = rec
		j.next = (j.next + 1) % j.size
	}
	j.total++
	sink = j.sink
	j.mu.Unlock()

	if sink != nil {
		if buf, err := json.Marshal(rec.stripSpans()); err == nil {
			buf = append(buf, '\n')
			// Write errors on a telemetry sink are not worth failing a
			// statement over; the ring still has the record.
			sink.Write(buf) //nolint:errcheck
		}
	}
	if j.slowOver > 0 && wall >= j.slowOver {
		j.slowLog.Warn("slow statement",
			"trace_id", rec.TraceID,
			"statement", rec.Statement,
			"wall_ms", rec.WallMS,
			"cache", rec.Cache,
			"backend", rec.Backend,
			"rows", rec.Rows,
		)
	}
	return rec
}

// Recent returns up to n completed records, newest first, without span
// trees (n <= 0 means all retained). Safe on nil.
func (j *Journal) Recent(n int) []*QueryRecord {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if n <= 0 || n > len(j.ring) {
		n = len(j.ring)
	}
	out := make([]*QueryRecord, 0, n)
	// Newest is the slot just before next (once wrapped) or the last
	// appended element (while filling).
	for i := 0; i < n; i++ {
		var idx int
		if len(j.ring) < j.size {
			idx = len(j.ring) - 1 - i
		} else {
			idx = ((j.next-1-i)%j.size + j.size) % j.size
		}
		out = append(out, j.ring[idx].stripSpans())
	}
	return out
}

// InFlight returns the live statements, oldest first. Safe on nil.
func (j *Journal) InFlight() []InflightInfo {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	qs := make([]*InflightQuery, 0, len(j.inflight))
	for _, q := range j.inflight {
		qs = append(qs, q)
	}
	j.mu.Unlock()
	out := make([]InflightInfo, 0, len(qs))
	for _, q := range qs {
		out = append(out, InflightInfo{
			Seq:       q.seq,
			TraceID:   q.trace.ID(),
			Statement: q.stmt,
			Task:      q.task,
			Start:     q.start,
			ElapsedMS: float64(time.Since(q.start)) / 1e6,
			Current:   q.trace.Current(),
		})
	}
	// Oldest first: stable for dashboards and tests.
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && out[k].Seq < out[k-1].Seq; k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return out
}

// Get resolves id — a trace ID or a decimal sequence number — to a
// completed record (with spans) or a live snapshot of an in-flight
// statement. Exactly one return is non-nil on a hit. Safe on nil.
func (j *Journal) Get(id string) (*QueryRecord, *InflightInfo) {
	if j == nil {
		return nil, nil
	}
	seq, seqErr := strconv.ParseInt(id, 10, 64)
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, q := range j.inflight {
		if q.trace.ID() == id || (seqErr == nil && q.seq == seq) {
			info := InflightInfo{
				Seq:       q.seq,
				TraceID:   q.trace.ID(),
				Statement: q.stmt,
				Task:      q.task,
				Start:     q.start,
				ElapsedMS: float64(time.Since(q.start)) / 1e6,
				Current:   q.trace.Current(),
			}
			return nil, &info
		}
	}
	for i := len(j.ring) - 1; i >= 0; i-- {
		r := j.ring[i]
		if r.TraceID == id || (seqErr == nil && r.Seq == seq) {
			return r, nil
		}
	}
	return nil, nil
}

// InFlightTrace returns the live trace of an in-flight statement by
// trace ID or sequence number, for rendering a partial span tree.
func (j *Journal) InFlightTrace(id string) *Trace {
	if j == nil {
		return nil
	}
	seq, seqErr := strconv.ParseInt(id, 10, 64)
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, q := range j.inflight {
		if q.trace.ID() == id || (seqErr == nil && q.seq == seq) {
			return q.trace
		}
	}
	return nil
}

// Total reports how many statements have completed since startup.
func (j *Journal) Total() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.total
}
