package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// endSimple completes a Begin'd query with a minimal outcome.
func endSimple(q *InflightQuery, rows int) *QueryRecord {
	return q.End(QueryOutcome{Cache: "cold", Backend: "bitmap", Rows: rows})
}

// TestJournalRing: the ring retains the newest Size records, newest
// first, with monotonically increasing sequence numbers.
func TestJournalRing(t *testing.T) {
	j := NewJournal(JournalConfig{Size: 4})
	for i := 0; i < 10; i++ {
		q := j.Begin(NewTrace(""), fmt.Sprintf("MINE #%d", i), "cycles")
		endSimple(q, i)
	}
	if got := j.Total(); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
	recent := j.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("Recent = %d records, want 4", len(recent))
	}
	for i, r := range recent {
		wantSeq := int64(10 - i)
		if r.Seq != wantSeq {
			t.Errorf("recent[%d].Seq = %d, want %d", i, r.Seq, wantSeq)
		}
		if r.Spans != nil {
			t.Errorf("recent[%d] still carries spans; list views must strip them", i)
		}
	}
	if got := j.Recent(2); len(got) != 2 || got[0].Seq != 10 {
		t.Fatalf("Recent(2) = %d records starting at seq %d, want 2 starting at 10", len(got), got[0].Seq)
	}
}

// TestJournalFillingRing: before the ring wraps, Recent still returns
// newest first.
func TestJournalFillingRing(t *testing.T) {
	j := NewJournal(JournalConfig{Size: 8})
	for i := 0; i < 3; i++ {
		endSimple(j.Begin(NewTrace(""), "MINE ...", ""), 0)
	}
	recent := j.Recent(0)
	if len(recent) != 3 || recent[0].Seq != 3 || recent[2].Seq != 1 {
		t.Fatalf("Recent = %+v, want seqs 3,2,1", recent)
	}
}

// TestJournalInflightAndGet: a running statement is visible in the
// in-flight table and resolvable by trace ID and by sequence number,
// live while running and as a full record (with spans) once done.
func TestJournalInflightAndGet(t *testing.T) {
	j := NewJournal(JournalConfig{})
	tr := NewTrace("trace-live")
	tr.StartTask(SpanStatement)
	tr.StartTask("op:build-hold")
	q := j.Begin(tr, "MINE PERIODS FROM baskets ...", "periods")

	inf := j.InFlight()
	if len(inf) != 1 {
		t.Fatalf("InFlight = %d, want 1", len(inf))
	}
	if inf[0].TraceID != "trace-live" || inf[0].Current != "op:build-hold" {
		t.Fatalf("inflight = %+v, want trace-live at op:build-hold", inf[0])
	}
	if inf[0].Task != "periods" {
		t.Errorf("Task = %q, want periods", inf[0].Task)
	}

	if rec, live := j.Get("trace-live"); rec != nil || live == nil {
		t.Fatal("Get(trace) while running: want live info, no record")
	}
	if rec, live := j.Get(strconv.FormatInt(inf[0].Seq, 10)); rec != nil || live == nil {
		t.Fatal("Get(seq) while running: want live info, no record")
	}
	if got := j.InFlightTrace("trace-live"); got != tr {
		t.Fatal("InFlightTrace did not return the live trace")
	}

	tr.EndTask()
	tr.EndTask()
	rec := q.End(QueryOutcome{
		Cache: "cold", Backend: "bitmap", PredictedBackend: "bitmap",
		Ops:   []OpWall{{Op: "op:build-hold", WallMS: 1.5}},
		Rules: 7, Rows: 7,
	})
	if len(j.InFlight()) != 0 {
		t.Fatal("statement still in flight after End")
	}
	got, live := j.Get("trace-live")
	if got == nil || live != nil {
		t.Fatal("Get after End: want record, no live info")
	}
	if got != rec || got.Rules != 7 || got.Cache != "cold" || got.Backend != "bitmap" {
		t.Fatalf("record = %+v", got)
	}
	if len(got.Spans) == 0 || got.Spans[0].Name != SpanStatement {
		t.Fatalf("record spans = %+v, want statement root", got.Spans)
	}
	if got.WallMS <= 0 {
		t.Errorf("WallMS = %v, want > 0", got.WallMS)
	}
	if r, l := j.Get("nope"); r != nil || l != nil {
		t.Fatal("Get(unknown) hit")
	}
}

// TestJournalError: an execution error is recorded on the ring entry.
func TestJournalError(t *testing.T) {
	j := NewJournal(JournalConfig{})
	q := j.Begin(NewTrace(""), "MINE ...", "cycles")
	q.End(QueryOutcome{Err: errors.New("boom")})
	if got := j.Recent(1)[0].Error; got != "boom" {
		t.Fatalf("Error = %q, want boom", got)
	}
}

// TestJournalSink: every completed statement lands in the JSONL sink
// as one parseable line, without the span tree.
func TestJournalSink(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(JournalConfig{Sink: &buf})
	for i := 0; i < 3; i++ {
		tr := NewTrace("")
		tr.StartTask(SpanStatement)
		tr.EndTask()
		endSimple(j.Begin(tr, fmt.Sprintf("MINE #%d", i), ""), i)
	}
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		var rec QueryRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		if rec.Spans != nil {
			t.Error("sink line carries spans")
		}
		if rec.Statement != fmt.Sprintf("MINE #%d", n) {
			t.Errorf("line %d statement = %q", n, rec.Statement)
		}
		n++
	}
	if n != 3 {
		t.Fatalf("sink has %d lines, want 3", n)
	}
}

// TestJournalSlowLog: statements over the threshold emit one
// structured warning; fast ones stay quiet.
func TestJournalSlowLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	j := NewJournal(JournalConfig{SlowThreshold: time.Nanosecond, SlowLog: logger})
	q := j.Begin(NewTrace("slow-1"), "MINE SLOW", "cycles")
	time.Sleep(time.Millisecond)
	endSimple(q, 0)
	out := buf.String()
	if !strings.Contains(out, "slow statement") || !strings.Contains(out, "slow-1") {
		t.Fatalf("slow log = %q, want a 'slow statement' line with the trace id", out)
	}

	buf.Reset()
	jFast := NewJournal(JournalConfig{SlowThreshold: time.Hour, SlowLog: logger})
	endSimple(jFast.Begin(NewTrace(""), "MINE FAST", ""), 0)
	if buf.Len() != 0 {
		t.Fatalf("fast statement logged: %q", buf.String())
	}
}

// TestJournalNil: a nil journal is fully disabled — Begin yields a nil
// handle whose End is a no-op, and the read side returns empty views.
func TestJournalNil(t *testing.T) {
	var j *Journal
	q := j.Begin(NewTrace(""), "MINE ...", "")
	if q != nil {
		t.Fatal("nil journal returned a handle")
	}
	if rec := q.End(QueryOutcome{}); rec != nil {
		t.Fatal("nil handle End returned a record")
	}
	if j.Recent(0) != nil || j.InFlight() != nil || j.Total() != 0 {
		t.Fatal("nil journal leaked state")
	}
	if r, l := j.Get("x"); r != nil || l != nil {
		t.Fatal("nil journal Get hit")
	}
	if j.InFlightTrace("x") != nil {
		t.Fatal("nil journal InFlightTrace hit")
	}
}

// TestJournalConcurrentSessions hammers the ring and the in-flight
// table from many writer goroutines while readers snapshot every view
// — the exact access pattern of a busy tarmd under /v1/queries
// polling. Must be clean under -race.
func TestJournalConcurrentSessions(t *testing.T) {
	j := NewJournal(JournalConfig{Size: 16, Sink: &syncBuffer{}})
	const writers = 8
	const perWriter = 200
	done := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 4; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				j.Recent(0)
				for _, inf := range j.InFlight() {
					j.Get(inf.TraceID)
					j.InFlightTrace(inf.TraceID)
				}
				j.Total()
			}
		}()
	}
	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < perWriter; i++ {
				tr := NewTrace("")
				tr.StartTask(SpanStatement)
				q := j.Begin(tr, fmt.Sprintf("MINE w%d i%d", w, i), "cycles")
				tr.StartPass(1)
				tr.EndPass(PassStats{Level: 1})
				tr.EndTask()
				endSimple(q, i)
			}
		}(w)
	}
	writersWG.Wait()
	close(done)
	readers.Wait()
	if got := j.Total(); got != writers*perWriter {
		t.Fatalf("Total = %d, want %d", got, writers*perWriter)
	}
	if len(j.InFlight()) != 0 {
		t.Fatal("statements left in flight")
	}
	if len(j.Recent(0)) != 16 {
		t.Fatalf("ring holds %d, want 16", len(j.Recent(0)))
	}
}

// syncBuffer is a mutex-guarded sink for the concurrent test (a real
// deployment hands the journal an *os.File, which is write-atomic).
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}
