package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTraceSpanTree drives a Trace through the tracer event stream a
// statement produces and checks the resulting tree: nesting by
// start/end pairing, pass spans named and closed by EndPass, and the
// pass statistics landing as attributes.
func TestTraceSpanTree(t *testing.T) {
	tr := NewTrace("req-1")
	if tr.ID() != "req-1" {
		t.Fatalf("ID = %q, want req-1", tr.ID())
	}
	tr.StartTask(SpanStatement)
	tr.SetAttr("table", "baskets")
	tr.StartTask("op:build-hold")
	tr.StartTask("core.BuildHoldTable")
	tr.StartPass(1)
	if got := tr.Current(); got != "pass:L1" {
		t.Fatalf("Current = %q, want pass:L1", got)
	}
	tr.EndPass(PassStats{Level: 1, Generated: 10, Pruned: 2, Counted: 8, Frequent: 5, Rows: 280, Backend: "bitmap"})
	tr.StartPass(2)
	tr.EndPass(PassStats{Level: 2, Generated: 4, Frequent: 1})
	tr.EndTask() // core.BuildHoldTable
	tr.EndTask() // op:build-hold
	tr.StartTask("op:render")
	tr.EndTask()
	tr.EndTask() // statement

	forest := tr.Tree()
	if len(forest) != 1 {
		t.Fatalf("got %d roots, want 1", len(forest))
	}
	root := forest[0]
	if root.Name != SpanStatement || root.Open {
		t.Fatalf("root = %q open=%v, want closed statement", root.Name, root.Open)
	}
	if root.Attrs["table"] != "baskets" {
		t.Errorf("root attrs = %v, want table=baskets", root.Attrs)
	}
	if len(root.Children) != 2 {
		t.Fatalf("statement children = %d, want 2 (build-hold, render)", len(root.Children))
	}
	build := root.Children[0]
	if build.Name != "op:build-hold" || len(build.Children) != 1 {
		t.Fatalf("child 0 = %q with %d children, want op:build-hold with 1", build.Name, len(build.Children))
	}
	core := build.Children[0]
	if core.Name != "core.BuildHoldTable" || len(core.Children) != 2 {
		t.Fatalf("grandchild = %q with %d children, want core.BuildHoldTable with 2 passes", core.Name, len(core.Children))
	}
	p1 := core.Children[0]
	if p1.Name != "pass:L1" {
		t.Fatalf("pass 0 = %q, want pass:L1", p1.Name)
	}
	for k, want := range map[string]string{
		"generated": "10", "pruned": "2", "counted": "8",
		"frequent": "5", "rows": "280", "backend": "bitmap",
	} {
		if got := p1.Attrs[k]; got != want {
			t.Errorf("pass:L1 attr %s = %q, want %q", k, got, want)
		}
	}
	if root.Children[1].Name != "op:render" {
		t.Errorf("child 1 = %q, want op:render", root.Children[1].Name)
	}
	if got := tr.Current(); got != "" {
		t.Errorf("Current after close = %q, want empty", got)
	}
}

// TestTraceObserveSpanOverwrite: the plan executor's caller-measured
// duration must replace the trace's own measurement for the span of
// that name, so the tree and EXPLAIN agree exactly.
func TestTraceObserveSpanOverwrite(t *testing.T) {
	tr := NewTrace("")
	tr.StartTask("op:scan")
	tr.EndTask()
	tr.ObserveSpan("op:scan", 123456789*time.Nanosecond)
	n := Find(tr.Tree(), "op:scan")
	if n == nil {
		t.Fatal("op:scan span not found")
	}
	if want := 123.456789; n.WallMS != want {
		t.Fatalf("WallMS = %v, want %v", n.WallMS, want)
	}
}

// TestTraceCounterGauge: counters accumulate and gauges overwrite on
// the innermost open span.
func TestTraceCounterGauge(t *testing.T) {
	tr := NewTrace("")
	tr.StartTask("statement")
	tr.Counter("rules_emitted", 3)
	tr.Counter("rules_emitted", 4)
	tr.Gauge("granules", 28)
	tr.Gauge("granules", 29)
	tr.EndTask()
	root := tr.Tree()[0]
	if got := root.Attrs["rules_emitted"]; got != "7" {
		t.Errorf("counter attr = %q, want 7", got)
	}
	if got := root.Attrs["granules"]; got != "29" {
		t.Errorf("gauge attr = %q, want 29", got)
	}
}

// TestTraceNil: every method must be a no-op on a nil *Trace, and a
// nil *Trace inside Multi must be skipped via Enabled() — the typed-nil
// interface hazard.
func TestTraceNil(t *testing.T) {
	var tr *Trace
	if tr.Enabled() {
		t.Fatal("nil trace reports Enabled")
	}
	tr.StartTask("x")
	tr.EndTask()
	tr.StartPass(1)
	tr.EndPass(PassStats{})
	tr.Counter("c", 1)
	tr.Gauge("g", 1)
	tr.SetAttr("k", "v")
	tr.ObserveSpan("x", time.Second)
	if tr.ID() != "" || tr.Current() != "" || tr.Tree() != nil || tr.Dropped() != 0 {
		t.Fatal("nil trace leaked state")
	}
	var buf strings.Builder
	tr.WriteText(&buf)
	if !strings.Contains(buf.String(), "no trace") {
		t.Fatalf("nil WriteText = %q", buf.String())
	}
	// Multi must treat the typed-nil tracer as disabled.
	collect := NewCollectTracer()
	m := Multi(collect, tr)
	m.StartTask("t")
	m.EndTask()
	if n := len(collect.Stats().Tasks); n != 1 {
		t.Fatalf("collector saw %d tasks through Multi, want 1", n)
	}
}

// TestTraceContext: ContextWithTrace/TraceFromContext round-trip, and
// a context without a trace yields nil.
func TestTraceContext(t *testing.T) {
	if TraceFromContext(context.Background()) != nil {
		t.Fatal("background context has a trace")
	}
	tr := NewTrace("abc")
	ctx := ContextWithTrace(context.Background(), tr)
	if got := TraceFromContext(ctx); got != tr {
		t.Fatalf("round-trip = %p, want %p", got, tr)
	}
	if got := ContextWithTrace(context.Background(), nil); TraceFromContext(got) != nil {
		t.Fatal("nil trace was attached")
	}
}

// TestTraceIDsUnique: generated trace IDs are 16 hex chars and do not
// collide over a reasonable draw.
func TestTraceIDsUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("id %q: len %d, want 16", id, len(id))
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

// TestTraceSpanCap: a pathological statement cannot grow a trace
// without bound; spans beyond the cap are counted, not stored.
func TestTraceSpanCap(t *testing.T) {
	tr := NewTrace("")
	for i := 0; i < maxTraceSpans+100; i++ {
		tr.StartTask(fmt.Sprintf("s%d", i))
		tr.EndTask()
	}
	if got := tr.Dropped(); got != 100 {
		t.Fatalf("Dropped = %d, want 100", got)
	}
	n := 0
	var count func(ns []*SpanNode)
	count = func(ns []*SpanNode) {
		for _, x := range ns {
			n++
			count(x.Children)
		}
	}
	count(tr.Tree())
	if n != maxTraceSpans {
		t.Fatalf("stored %d spans, want %d", n, maxTraceSpans)
	}
}

// TestTraceWriteText: the text render names every span with durations
// and attributes.
func TestTraceWriteText(t *testing.T) {
	tr := NewTrace("tid-1")
	tr.StartTask("statement")
	tr.StartTask("op:scan")
	tr.EndTask()
	tr.StartPass(1)
	tr.EndPass(PassStats{Level: 1, Frequent: 3})
	tr.EndTask()
	var buf strings.Builder
	tr.WriteText(&buf)
	out := buf.String()
	for _, want := range []string{"trace tid-1", "statement", "op:scan", "pass:L1", "frequent=3", "ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText missing %q in:\n%s", want, out)
		}
	}
}

// TestTraceConcurrent hammers a live trace from reader goroutines
// while a writer opens and closes spans — the journal's in-flight view
// reads Current() and Tree() mid-statement, so this must be clean
// under -race.
func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace("")
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				tr.Current()
				tr.Tree()
				var buf strings.Builder
				tr.WriteText(&buf)
			}
		}()
	}
	for i := 0; i < 500; i++ {
		tr.StartTask("op:mine")
		tr.Counter("rules_emitted", 1)
		tr.StartPass(1)
		tr.EndPass(PassStats{Level: 1})
		tr.EndTask()
		tr.ObserveSpan("op:mine", time.Millisecond)
	}
	close(done)
	wg.Wait()
}
