package clihelp

import (
	"context"
	"flag"
	"io"
	"testing"
	"time"

	"github.com/tarm-project/tarm/internal/apriori"
	"github.com/tarm-project/tarm/internal/core"
	"github.com/tarm-project/tarm/internal/tdb"
)

// newFlagSet builds a fresh FlagSet the way each binary does, so the
// tests exercise exactly the per-binary registration path.
func newFlagSet(name string, mf *MiningFlags) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	mf.RegisterMining(fs)
	mf.RegisterTimeout(fs)
	mf.RegisterCache(fs)
	mf.RegisterDurability(fs)
	return fs
}

// TestFlagsIdenticalAcrossBinaries parses the same command lines
// through three independent FlagSets — one per binary — and asserts
// every resolved value matches, which is the clihelp contract:
// -backend/-workers/-timeout/-cache cannot drift between iqms, tarmine
// and tarmd.
func TestFlagsIdenticalAcrossBinaries(t *testing.T) {
	cases := [][]string{
		{}, // defaults
		{"-backend", "bitmap", "-workers", "4"},
		{"-backend", "hashtree", "-timeout", "30s"},
		{"-backend", "naive", "-workers", "2", "-timeout", "1500ms", "-cache", "64"},
		{"-cache", "0"},
		{"-wal", "-fsync", "interval", "-fsync-interval", "25ms", "-checkpoint-interval", "5m"},
	}
	for _, args := range cases {
		var got []MiningFlags
		for _, bin := range []string{"iqms", "tarmine", "tarmd"} {
			var mf MiningFlags
			if err := newFlagSet(bin, &mf).Parse(args); err != nil {
				t.Fatalf("%s %v: %v", bin, args, err)
			}
			got = append(got, mf)
		}
		for i := 1; i < len(got); i++ {
			if got[i] != got[0] {
				t.Errorf("args %v: binary %d parsed %+v, binary 0 parsed %+v", args, i, got[i], got[0])
			}
		}
	}
}

func TestDefaults(t *testing.T) {
	var mf MiningFlags
	if err := newFlagSet("x", &mf).Parse(nil); err != nil {
		t.Fatal(err)
	}
	if mf.BackendName != "auto" || mf.Workers != 0 || mf.Timeout != 0 {
		t.Errorf("defaults: %+v", mf)
	}
	if b, err := mf.Backend(); err != nil || b != apriori.BackendAuto {
		t.Errorf("Backend() = %v, %v", b, err)
	}
	if got, want := mf.CacheBytes(), core.DefaultCacheBytes; got != want {
		t.Errorf("CacheBytes() = %d, want %d", got, want)
	}
}

func TestBackendResolution(t *testing.T) {
	for name, want := range map[string]apriori.Backend{
		"auto":     apriori.BackendAuto,
		"naive":    apriori.BackendNaive,
		"hashtree": apriori.BackendHashTree,
		"bitmap":   apriori.BackendBitmap,
		"roaring":  apriori.BackendRoaring,
	} {
		mf := MiningFlags{BackendName: name}
		got, err := mf.Backend()
		if err != nil || got != want {
			t.Errorf("Backend(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	mf := MiningFlags{BackendName: "quantum"}
	if _, err := mf.Backend(); err == nil {
		t.Error("unknown backend accepted")
	}
}

func TestStatementContext(t *testing.T) {
	// No timeout: the parent comes back unchanged with a no-op cancel.
	var mf MiningFlags
	parent := context.Background()
	ctx, cancel := mf.StatementContext(parent)
	if ctx != parent {
		t.Error("zero timeout should return the parent context")
	}
	cancel() // must be safe
	if ctx.Err() != nil {
		t.Error("no-op cancel cancelled the parent")
	}

	// With a timeout: a deadline at roughly now+timeout.
	mf.Timeout = time.Minute
	ctx, cancel = mf.StatementContext(parent)
	defer cancel()
	dl, ok := ctx.Deadline()
	if !ok {
		t.Fatal("timeout context has no deadline")
	}
	if until := time.Until(dl); until <= 0 || until > time.Minute {
		t.Errorf("deadline %v from now, want (0, 1m]", until)
	}
}

func TestCacheBytes(t *testing.T) {
	if got := (&MiningFlags{CacheMB: 64}).CacheBytes(); got != 64<<20 {
		t.Errorf("CacheBytes(64MB) = %d", got)
	}
	if got := (&MiningFlags{CacheMB: 0}).CacheBytes(); got != 0 {
		t.Errorf("CacheBytes(0) = %d", got)
	}
}

// TestDurabilityFlags covers the -wal/-fsync flag family: defaults,
// parsing, resolution into a tdb.Durability and the validation errors
// every binary must report identically.
func TestDurabilityFlags(t *testing.T) {
	var mf MiningFlags
	if err := newFlagSet("x", &mf).Parse(nil); err != nil {
		t.Fatal(err)
	}
	if mf.WAL || mf.FsyncName != "always" || mf.FsyncInterval != 0 || mf.CheckpointInterval != 0 {
		t.Errorf("durability defaults: %+v", mf)
	}
	cfg, err := mf.Durability(nil)
	if err != nil || cfg.Fsync != tdb.FsyncAlways {
		t.Errorf("Durability() = %+v, %v; want FsyncAlways", cfg, err)
	}

	mf = MiningFlags{}
	if err := newFlagSet("x", &mf).Parse([]string{
		"-wal", "-fsync", "interval", "-fsync-interval", "25ms", "-checkpoint-interval", "5m"}); err != nil {
		t.Fatal(err)
	}
	cfg, err = mf.Durability(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !mf.WAL || cfg.Fsync != tdb.FsyncInterval || cfg.SyncInterval != 25*time.Millisecond || cfg.CheckpointInterval != 5*time.Minute {
		t.Errorf("resolved %+v from %+v", cfg, mf)
	}

	for _, bad := range []MiningFlags{
		{FsyncName: "sometimes"},
		{FsyncName: "always", FsyncInterval: -time.Second},
		{FsyncName: "always", CheckpointInterval: -time.Minute},
	} {
		if _, err := bad.Durability(nil); err == nil {
			t.Errorf("Durability(%+v) accepted", bad)
		}
	}
}

// TestOpenDB checks the flag→engine dispatch: without -wal a plain
// directory database, with it a durable one whose directory then
// refuses the plain loader.
func TestOpenDB(t *testing.T) {
	dir := t.TempDir() + "/plain"
	mf := MiningFlags{FsyncName: "always"}
	db, err := mf.OpenDB(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if db.Durable() {
		t.Error("plain OpenDB returned a durable database")
	}

	dir = t.TempDir() + "/wal"
	mf.WAL = true
	db, err = mf.OpenDB(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !db.Durable() {
		t.Fatal("OpenDB with WAL set returned a non-durable database")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := tdb.Open(dir); err == nil {
		t.Error("plain Open accepted the WAL-backed directory")
	}

	mf.FsyncName = "sometimes"
	if _, err := mf.OpenDB(t.TempDir(), nil); err == nil {
		t.Error("OpenDB accepted an invalid fsync policy")
	}
}
