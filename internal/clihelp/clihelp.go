// Package clihelp holds the flag and metrics setup shared by the three
// binaries (iqms, tarmine, tarmd), so -backend, -workers, -timeout and
// -cache spell, default and behave identically everywhere. Each binary
// registers the subset it supports on its own FlagSet; resolution (the
// backend parse, the cache sizing, the per-statement context) lives
// here so the binaries cannot drift apart.
package clihelp

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"github.com/tarm-project/tarm/internal/apriori"
	"github.com/tarm-project/tarm/internal/core"
	"github.com/tarm-project/tarm/internal/obs"
)

// Flag usage strings, shared verbatim by every binary that registers
// the flag.
const (
	backendUsage = "counting backend: auto, naive, hashtree, bitmap or roaring"
	workersUsage = "parallel counting workers (0 = sequential)"
	timeoutUsage = "abort any single statement after this long, e.g. 30s (0 = no limit)"
	cacheUsage   = "hold-table cache budget in MB (0 = disable caching)"
)

// MiningFlags is the cross-binary flag bundle. Zero value + Register*
// + fs.Parse yields the shared defaults.
type MiningFlags struct {
	// BackendName is the raw -backend value; resolve it with Backend().
	BackendName string
	// Workers is the -workers value.
	Workers int
	// Timeout is the -timeout value (per statement).
	Timeout time.Duration
	// CacheMB is the -cache value in megabytes.
	CacheMB int
}

// RegisterMining adds -backend and -workers, the knobs of the counting
// pass itself, which every binary supports.
func (f *MiningFlags) RegisterMining(fs *flag.FlagSet) {
	fs.StringVar(&f.BackendName, "backend", "auto", backendUsage)
	fs.IntVar(&f.Workers, "workers", 0, workersUsage)
}

// RegisterTimeout adds -timeout, the per-statement deadline.
func (f *MiningFlags) RegisterTimeout(fs *flag.FlagSet) {
	fs.DurationVar(&f.Timeout, "timeout", 0, timeoutUsage)
}

// RegisterCache adds -cache, the hold-table cache budget, defaulting
// to core.DefaultCacheBytes.
func (f *MiningFlags) RegisterCache(fs *flag.FlagSet) {
	fs.IntVar(&f.CacheMB, "cache", int(core.DefaultCacheBytes>>20), cacheUsage)
}

// Backend resolves -backend, with the same error text in every binary.
func (f *MiningFlags) Backend() (apriori.Backend, error) {
	return apriori.ParseBackend(f.BackendName)
}

// CacheBytes converts -cache to the byte budget NewHoldCache expects
// (0 disables caching).
func (f *MiningFlags) CacheBytes() int64 { return int64(f.CacheMB) << 20 }

// StatementContext applies -timeout to parent: with a timeout it
// returns a deadline context, without one it returns parent and a
// no-op cancel, so callers can defer cancel() unconditionally.
func (f *MiningFlags) StatementContext(parent context.Context) (context.Context, context.CancelFunc) {
	if f.Timeout > 0 {
		return context.WithTimeout(parent, f.Timeout)
	}
	return parent, func() {}
}

// ServeMetrics binds addr and serves the observability DebugMux
// (/metrics, /debug/vars, /debug/pprof) for reg in the background,
// announcing the resolved address on stderr under the binary's name.
// Binding synchronously surfaces a bad address as a startup error
// rather than a lost log line.
func ServeMetrics(binary, addr string, reg *obs.Registry) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%s: metrics on http://%s/metrics (pprof under /debug/pprof/)\n", binary, ln.Addr())
	go func() {
		if err := http.Serve(ln, obs.DebugMux(reg)); err != nil {
			fmt.Fprintf(os.Stderr, "%s: metrics server: %v\n", binary, err)
		}
	}()
	return nil
}
