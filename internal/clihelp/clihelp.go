// Package clihelp holds the flag and metrics setup shared by the three
// binaries (iqms, tarmine, tarmd), so -backend, -workers, -timeout and
// -cache spell, default and behave identically everywhere. Each binary
// registers the subset it supports on its own FlagSet; resolution (the
// backend parse, the cache sizing, the per-statement context) lives
// here so the binaries cannot drift apart.
package clihelp

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"github.com/tarm-project/tarm/internal/apriori"
	"github.com/tarm-project/tarm/internal/core"
	"github.com/tarm-project/tarm/internal/obs"
	"github.com/tarm-project/tarm/internal/tdb"
)

// Flag usage strings, shared verbatim by every binary that registers
// the flag.
const (
	backendUsage    = "counting backend: auto, naive, hashtree, bitmap or roaring"
	workersUsage    = "parallel counting workers (0 = sequential)"
	timeoutUsage    = "abort any single statement after this long, e.g. 30s (0 = no limit)"
	cacheUsage      = "hold-table cache budget in MB (0 = disable caching)"
	journalUsage    = "query-journal ring size in statements (0 = default 128, -1 = disable)"
	slowQueryUsage  = "log a structured warning for statements slower than this, e.g. 2s (0 = off)"
	journalLogUsage = "append every completed statement as a JSON line to this file"
	walUsage        = "open the database with the WAL-backed storage engine (crash-safe appends)"
	fsyncUsage      = "WAL fsync policy: always (group commit per ack), interval or off"
	fsyncIntUsage   = "background fsync cadence under -fsync interval, e.g. 50ms"
	checkpointUsage = "checkpoint cadence, e.g. 5m (0 = only on flush/exit); implies bounded recovery time"
)

// MiningFlags is the cross-binary flag bundle. Zero value + Register*
// + fs.Parse yields the shared defaults.
type MiningFlags struct {
	// BackendName is the raw -backend value; resolve it with Backend().
	BackendName string
	// Workers is the -workers value.
	Workers int
	// Timeout is the -timeout value (per statement).
	Timeout time.Duration
	// CacheMB is the -cache value in megabytes.
	CacheMB int
	// JournalSize is the -journal value (ring capacity; -1 disables).
	JournalSize int
	// SlowQuery is the -slow-query value (0 = off).
	SlowQuery time.Duration
	// JournalLog is the -journal-log value (JSONL sink path).
	JournalLog string
	// WAL is the -wal value: open the database durably.
	WAL bool
	// FsyncName is the raw -fsync value; resolve with Durability().
	FsyncName string
	// FsyncInterval is the -fsync-interval value.
	FsyncInterval time.Duration
	// CheckpointInterval is the -checkpoint-interval value.
	CheckpointInterval time.Duration
}

// RegisterMining adds -backend and -workers, the knobs of the counting
// pass itself, which every binary supports.
func (f *MiningFlags) RegisterMining(fs *flag.FlagSet) {
	fs.StringVar(&f.BackendName, "backend", "auto", backendUsage)
	fs.IntVar(&f.Workers, "workers", 0, workersUsage)
}

// RegisterTimeout adds -timeout, the per-statement deadline.
func (f *MiningFlags) RegisterTimeout(fs *flag.FlagSet) {
	fs.DurationVar(&f.Timeout, "timeout", 0, timeoutUsage)
}

// RegisterCache adds -cache, the hold-table cache budget, defaulting
// to core.DefaultCacheBytes.
func (f *MiningFlags) RegisterCache(fs *flag.FlagSet) {
	fs.IntVar(&f.CacheMB, "cache", int(core.DefaultCacheBytes>>20), cacheUsage)
}

// RegisterJournal adds -journal, -slow-query and -journal-log, the
// query-journal knobs of the serving front end.
func (f *MiningFlags) RegisterJournal(fs *flag.FlagSet) {
	fs.IntVar(&f.JournalSize, "journal", 0, journalUsage)
	fs.DurationVar(&f.SlowQuery, "slow-query", 0, slowQueryUsage)
	fs.StringVar(&f.JournalLog, "journal-log", "", journalLogUsage)
}

// RegisterDurability adds -wal, -fsync, -fsync-interval and
// -checkpoint-interval, the storage-engine knobs of every binary that
// opens a database directory.
func (f *MiningFlags) RegisterDurability(fs *flag.FlagSet) {
	fs.BoolVar(&f.WAL, "wal", false, walUsage)
	fs.StringVar(&f.FsyncName, "fsync", "always", fsyncUsage)
	fs.DurationVar(&f.FsyncInterval, "fsync-interval", 0, fsyncIntUsage)
	fs.DurationVar(&f.CheckpointInterval, "checkpoint-interval", 0, checkpointUsage)
}

// Durability resolves the -fsync/-fsync-interval/-checkpoint-interval
// flags into the tdb config, with the same error text in every binary.
// reg may be nil (no metrics).
func (f *MiningFlags) Durability(reg *obs.Registry) (tdb.Durability, error) {
	pol, err := tdb.ParseFsyncPolicy(f.FsyncName)
	if err != nil {
		return tdb.Durability{}, fmt.Errorf("-fsync: %w", err)
	}
	if f.FsyncInterval < 0 {
		return tdb.Durability{}, fmt.Errorf("-fsync-interval must be >= 0 (got %v)", f.FsyncInterval)
	}
	if f.CheckpointInterval < 0 {
		return tdb.Durability{}, fmt.Errorf("-checkpoint-interval must be >= 0 (got %v)", f.CheckpointInterval)
	}
	return tdb.Durability{
		Fsync:              pol,
		SyncInterval:       f.FsyncInterval,
		CheckpointInterval: f.CheckpointInterval,
		Registry:           reg,
	}, nil
}

// OpenDB opens dir under the engine the flags select: OpenDurable with
// -wal (metrics on reg when non-nil), the plain loader otherwise.
func (f *MiningFlags) OpenDB(dir string, reg *obs.Registry) (*tdb.DB, error) {
	if !f.WAL {
		return tdb.Open(dir)
	}
	cfg, err := f.Durability(reg)
	if err != nil {
		return nil, err
	}
	return tdb.OpenDurable(dir, cfg)
}

// JournalSink opens the -journal-log sink for appending, or returns
// (nil, nil) when the flag is unset. The caller owns the returned file.
func (f *MiningFlags) JournalSink() (*os.File, error) {
	if f.JournalLog == "" {
		return nil, nil
	}
	return os.OpenFile(f.JournalLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// Backend resolves -backend (and checks -workers, registered by the
// same RegisterMining call), with the same error text in every binary.
func (f *MiningFlags) Backend() (apriori.Backend, error) {
	if f.Workers < 0 {
		return 0, fmt.Errorf("-workers must be >= 0 (got %d)", f.Workers)
	}
	return apriori.ParseBackend(f.BackendName)
}

// CacheBytes converts -cache to the byte budget NewHoldCache expects
// (0 disables caching).
func (f *MiningFlags) CacheBytes() int64 { return int64(f.CacheMB) << 20 }

// StatementContext applies -timeout to parent: with a timeout it
// returns a deadline context, without one it returns parent and a
// no-op cancel, so callers can defer cancel() unconditionally.
func (f *MiningFlags) StatementContext(parent context.Context) (context.Context, context.CancelFunc) {
	if f.Timeout > 0 {
		return context.WithTimeout(parent, f.Timeout)
	}
	return parent, func() {}
}

// ServeMetrics binds addr and serves the observability DebugMux
// (/metrics, /debug/vars, /debug/pprof) for reg in the background,
// announcing the resolved address on stderr under the binary's name.
// Binding synchronously surfaces a bad address as a startup error
// rather than a lost log line.
func ServeMetrics(binary, addr string, reg *obs.Registry) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%s: metrics on http://%s/metrics (pprof under /debug/pprof/)\n", binary, ln.Addr())
	go func() {
		if err := http.Serve(ln, obs.DebugMux(reg)); err != nil {
			fmt.Fprintf(os.Stderr, "%s: metrics server: %v\n", binary, err)
		}
	}()
	return nil
}
