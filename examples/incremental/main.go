// Incremental: the production loop for a live deployment — a year of
// history on disk in monthly segments, one new day of transactions
// arriving, and the mining state refreshed without recounting history.
//
//  1. SaveTxTableSegmented persists only the changed month.
//  2. HoldTable.Extend tops the counting state up with the new day.
//  3. The refreshed table answers all three tasks immediately.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	tarm "github.com/tarm-project/tarm"
)

func main() {
	dir, err := os.MkdirTemp("", "tarm-incremental")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	segDir := filepath.Join(dir, "baskets.segs")

	dict := tarm.NewDict()
	weekendPair := dict.InternAll("chips", "beer")
	weekend, _ := tarm.ParsePattern("weekday in (sat, sun)")

	// A year of history.
	history, err := tarm.GenerateTemporal(tarm.TemporalConfig{
		Quest:        tarm.QuestConfig{NItems: 300, NPatterns: 80, AvgTxLen: 8, AvgPatLen: 3},
		Start:        time.Date(1998, 1, 1, 0, 0, 0, 0, time.UTC),
		Granularity:  tarm.Day,
		NGranules:    364,
		TxPerGranule: 60,
		Rules: []tarm.PlantedRule{{
			Name: "weekend", Items: weekendPair, Pattern: weekend,
			PInside: 0.35, POutside: 0.005,
		}},
	}, 2024)
	if err != nil {
		log.Fatal(err)
	}

	segCfg := tarm.SegmentConfig{Granularity: tarm.Month, Width: 1}
	stats, err := tarm.SaveTxTableSegmented(history, segDir, segCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial save: %d segments written, %d skipped\n", stats.Written, stats.Skipped)

	cfg := tarm.Config{
		Granularity:   tarm.Day,
		MinSupport:    0.15,
		MinConfidence: 0.6,
		MinFreq:       0.8,
		MaxK:          3,
	}
	t0 := time.Now()
	hold, err := tarm.BuildHoldTable(history, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial counting pass over %d transactions: %v\n", history.Len(), time.Since(t0).Round(time.Millisecond))

	// A new day arrives (a Saturday: 1998-12-31 is day 364... use the
	// day after the span).
	span, _ := history.Span(tarm.Day)
	newDay := time.Unix((span.Hi+1)*86400, 0).UTC()
	for i := 0; i < 60; i++ {
		items := dict.InternAll("chips", "beer", fmt.Sprintf("sku%03d", i%50))
		history.Append(newDay.Add(time.Duration(i)*time.Minute), items)
	}

	t1 := time.Now()
	stats, err = tarm.SaveTxTableSegmented(history, segDir, segCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("incremental save: %d written, %d skipped (%v)\n",
		stats.Written, stats.Skipped, time.Since(t1).Round(time.Millisecond))

	t2 := time.Now()
	hold, err = hold.Extend(history)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("incremental counting refresh: %v\n", time.Since(t2).Round(time.Millisecond))

	// The refreshed state serves queries immediately.
	rules, err := tarm.MineDuringFromTable(hold, weekend)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rules {
		if r.Rule.Antecedent.Equal(dict.InternAll("chips")) {
			fmt.Printf("weekend rule live: %s => %s (freq %.2f)\n",
				dict.Names(r.Rule.Antecedent), dict.Names(r.Rule.Consequent), r.Freq)
		}
	}

	// Restart path: load from segments.
	reloaded, _, err := tarm.LoadTxTableSegmented(segDir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reloaded %d transactions from %s\n", reloaded.Len(), filepath.Base(segDir))
}
