// Incremental: the write-traffic loop for a live deployment — a year
// of history mined warm, late transactions arriving into days that
// were already counted, and the mining state delta-maintained instead
// of rebuilt.
//
//  1. A MINE statement builds the hold table once (cache miss), and a
//     repeat is served from the cache (hit).
//  2. AppendBatch lands new transactions in a handful of existing
//     granules; the table's change log records which days went dirty.
//  3. The next warm MINE re-counts only the dirty granule blocks and
//     splices the fresh columns into the cached entry (outcome
//     "delta") — bit-identical rules at a fraction of the rebuild.
//  4. The same machinery is available below the session: DirtySince
//     names the dirty granules and HoldTable.Maintain splices them.
package main

import (
	"fmt"
	"log"
	"time"

	tarm "github.com/tarm-project/tarm"
)

const statement = `MINE PERIODS FROM baskets THRESHOLD SUPPORT 0.15 CONFIDENCE 0.6 FREQUENCY 0.8 MIN LENGTH 7`

func main() {
	db := tarm.NewMemDB()
	dict := db.Dict()
	weekendPair := dict.InternAll("chips", "beer")
	weekend, _ := tarm.ParsePattern("weekday in (sat, sun)")

	// A year of history.
	history, err := tarm.GenerateTemporal(tarm.TemporalConfig{
		Quest:        tarm.QuestConfig{NItems: 300, NPatterns: 80, AvgTxLen: 8, AvgPatLen: 3},
		Start:        time.Date(1998, 1, 1, 0, 0, 0, 0, time.UTC),
		Granularity:  tarm.Day,
		NGranules:    364,
		TxPerGranule: 60,
		Rules: []tarm.PlantedRule{{
			Name: "weekend", Items: weekendPair, Pattern: weekend,
			PInside: 0.35, POutside: 0.005,
		}},
	}, 2024)
	if err != nil {
		log.Fatal(err)
	}

	baskets, err := db.CreateTxTable("baskets")
	if err != nil {
		log.Fatal(err)
	}
	history.Each(func(tx tarm.Tx) bool {
		baskets.Append(tx.At, tx.Items)
		return true
	})
	session := tarm.NewSession(db)

	// Cold: the first statement pays the counting pass.
	exec := func(label string) int {
		t0 := time.Now()
		res, err := session.Exec(statement)
		if err != nil {
			log.Fatal(err)
		}
		st := session.TML.Cache.Stats()
		fmt.Printf("%-28s %4d rules  %8v   cache m/h/de = %d/%d/%d\n",
			label, len(res.Rows), time.Since(t0).Round(time.Microsecond),
			st.Misses, st.Hits, st.Deltas)
		return len(res.Rows)
	}
	exec("cold MINE (miss):")
	exec("repeat (hit):")

	// Late data arrives into three days that were already counted: the
	// batch goes in under one lock, and the change log records exactly
	// which granules went dirty.
	var late []tarm.Tx
	for _, day := range []int{90, 91, 200} {
		at := time.Date(1998, 1, 1, 9, 0, 0, 0, time.UTC).AddDate(0, 0, day)
		for i := 0; i < 40; i++ {
			late = append(late, tarm.Tx{
				At:    at.Add(time.Duration(i) * time.Minute),
				Items: dict.InternAll("chips", "beer", fmt.Sprintf("sku%03d", i%50)),
			})
		}
	}
	epochBefore := baskets.Epoch()
	_, epoch := baskets.AppendBatch(late)
	dirty, _, _ := baskets.DirtySince(tarm.Day, epochBefore)
	fmt.Printf("\nappended %d late tx; epoch %d → %d; dirty granules: %d of 364\n\n",
		len(late), epochBefore, epoch, len(dirty))

	// Warm again: the cached entry is delta-maintained — only the three
	// dirty days are recounted and spliced in.
	exec("warm after append (delta):")

	// The same splice below the session: DirtySince + Maintain give any
	// embedding the delta path directly.
	cfg := tarm.Config{
		Granularity: tarm.Day, MinSupport: 0.15, MinConfidence: 0.6, MinFreq: 0.8,
	}
	t0 := time.Now()
	hold, err := tarm.BuildHoldTable(baskets, cfg)
	if err != nil {
		log.Fatal(err)
	}
	build := time.Since(t0)
	epochBefore = baskets.Epoch()
	baskets.AppendBatch(late[:40]) // another 40 tx into day 90
	dirty, _, ok := baskets.DirtySince(tarm.Day, epochBefore)
	if !ok {
		log.Fatal("change log trimmed; rebuild instead")
	}
	t0 = time.Now()
	hold, err = hold.Maintain(baskets, dirty)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncore API: BuildHoldTable %v, Maintain(%d dirty granule) %v\n",
		build.Round(time.Microsecond), len(dirty), time.Since(t0).Round(time.Microsecond))

	// The maintained state serves queries immediately.
	rules, err := tarm.MineDuringFromTable(hold, weekend)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rules {
		if r.Rule.Antecedent.Equal(dict.InternAll("chips")) {
			fmt.Printf("weekend rule live: %s => %s (freq %.2f)\n",
				dict.Names(r.Rule.Antecedent), dict.Names(r.Rule.Consequent), r.Freq)
		}
	}
}
