// Quickstart: build a small basket table by hand, then run the three
// temporal mining tasks over it and print what each one sees.
package main

import (
	"fmt"
	"log"
	"time"

	tarm "github.com/tarm-project/tarm"
)

func main() {
	db := tarm.NewMemDB()
	baskets, err := db.CreateTxTable("baskets")
	if err != nil {
		log.Fatal(err)
	}

	// Four weeks of shopping. Bread+milk sell together every day;
	// chocolate+wine only on weekends.
	start := time.Date(2024, 1, 1, 9, 0, 0, 0, time.UTC) // a Monday
	for day := 0; day < 28; day++ {
		at := start.AddDate(0, 0, day)
		weekend := day%7 >= 5
		for i := 0; i < 8; i++ {
			names := []string{"bread"}
			if i < 6 {
				names = append(names, "milk")
			}
			if weekend && i < 7 {
				names = append(names, "chocolate", "wine")
			}
			baskets.Append(at.Add(time.Duration(i)*time.Minute), db.Dict().InternAll(names...))
		}
	}

	cfg := tarm.Config{
		Granularity:   tarm.Day,
		MinSupport:    0.5,
		MinConfidence: 0.7,
		MinFreq:       1.0,
	}

	fmt.Println("== Task I: valid periods ==")
	periods, err := tarm.MineValidPeriods(baskets, cfg, tarm.PeriodConfig{MinLen: 2})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range periods {
		fmt.Printf("  %s => %s during %s (conf %.2f)\n",
			db.Dict().Names(r.Rule.Antecedent), db.Dict().Names(r.Rule.Consequent),
			r.Interval.Format(tarm.Day), r.Rule.Confidence)
	}

	fmt.Println("== Task II: periodicities ==")
	cals, err := tarm.MineCalendarPeriodicities(baskets, cfg, tarm.CycleConfig{MinReps: 2})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range cals {
		fmt.Printf("  %s => %s when %s (freq %.2f)\n",
			db.Dict().Names(r.Rule.Antecedent), db.Dict().Names(r.Rule.Consequent),
			r.Feature, r.Freq)
	}

	fmt.Println("== Task III: rules during weekends ==")
	during, err := tarm.MineDuringExpr(baskets, cfg, "weekday in (sat, sun)")
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range during {
		fmt.Printf("  %s => %s (supp %.2f, conf %.2f)\n",
			db.Dict().Names(r.Rule.Antecedent), db.Dict().Names(r.Rule.Consequent),
			r.Rule.Support, r.Rule.Confidence)
	}

	fmt.Println("== Traditional Apriori over the whole month ==")
	trad, err := tarm.MineTraditional(baskets, 0.5, 0.7, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range trad {
		fmt.Printf("  %s => %s (supp %.2f) — note: no weekend rule here\n",
			db.Dict().Names(r.Antecedent), db.Dict().Names(r.Consequent), r.Support)
	}
}
