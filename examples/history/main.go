// History: result analysis with RuleHistory — render a rule's weekly
// support profile as an ASCII chart and show interestingness pruning.
// This is the "Result Analysis" box of the paper's IQMI loop, as a
// library user would script it.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	tarm "github.com/tarm-project/tarm"
)

func main() {
	db := tarm.NewMemDB()
	dict := db.Dict()
	icecream := dict.InternAll("ice_cream", "cone")
	for i := 0; i < 300; i++ {
		dict.Intern(fmt.Sprintf("sku%03d", i))
	}

	summer, err := tarm.ParsePattern("month in (may..sep)")
	if err != nil {
		log.Fatal(err)
	}
	tbl, err := tarm.GenerateTemporal(tarm.TemporalConfig{
		Quest:        tarm.QuestConfig{NItems: 300, NPatterns: 80, AvgTxLen: 8, AvgPatLen: 3},
		Start:        time.Date(1998, 1, 1, 0, 0, 0, 0, time.UTC),
		Granularity:  tarm.Day,
		NGranules:    364,
		TxPerGranule: 80,
		Rules: []tarm.PlantedRule{{
			Name: "icecream", Items: icecream, Pattern: summer,
			PInside: 0.3, POutside: 0.01,
		}},
	}, 1234)
	if err != nil {
		log.Fatal(err)
	}

	cfg := tarm.Config{
		Granularity:   tarm.Day,
		MinSupport:    0.15,
		MinConfidence: 0.6,
		MinFreq:       0.8,
		MaxK:          2,
	}
	ante := tarm.NewItemset(icecream[0])
	cons := tarm.NewItemset(icecream[1])
	stats, err := tarm.RuleHistory(tbl, cfg, ante, cons)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("weekly support of %s => %s over 1998\n\n",
		dict.Names(ante), dict.Names(cons))
	// Fold days into weeks and draw a bar per week.
	const daysPerBucket = 7
	for start := 0; start < len(stats); start += daysPerBucket {
		end := start + daysPerBucket
		if end > len(stats) {
			end = len(stats)
		}
		var count, tx int
		for _, s := range stats[start:end] {
			count += s.Count
			tx += s.TxCount
		}
		supp := 0.0
		if tx > 0 {
			supp = float64(count) / float64(tx)
		}
		bar := strings.Repeat("█", int(supp*120+0.5))
		label := stats[start].Granule
		fmt.Printf("%s  %5.1f%%  %s\n", tarmFormatWeek(label), supp*100, bar)
	}

	// Pruning demo: loose mining floods, filters clean up.
	fmt.Println("\npruning at loose thresholds (support 0.05, confidence 0.3):")
	rules, err := tarm.MineTraditional(tbl, 0.05, 0.3, 2)
	if err != nil {
		log.Fatal(err)
	}
	kept, pstats, err := tarm.PruneRules(rules, tarm.PruneOptions{
		MinLift:   1.2,
		MaxPValue: 0.001,
		N:         tbl.Len(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d mined; %d dropped by lift, %d by significance; %d kept\n",
		pstats.In, pstats.DropLift, pstats.DropSig, pstats.Kept)
	tarm.SortRulesByLift(kept)
	for i, r := range kept {
		if i == 8 {
			fmt.Printf("  ... and %d more\n", len(kept)-8)
			break
		}
		fmt.Printf("  %s => %s (lift %.1f)\n",
			dict.Names(r.Antecedent), dict.Names(r.Consequent), r.Lift)
	}
}

// tarmFormatWeek labels a week by its first day.
func tarmFormatWeek(g tarm.Granule) string {
	return time.Unix(g*86400, 0).UTC().Format("Jan 02")
}
