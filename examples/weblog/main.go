// Weblog periodicity: hour-granularity access "sessions" where the
// pair (login, checkout) spikes every evening and a weekly batch job
// hits the API every Monday morning. Task II discovers both the
// hour-of-day calendar class and the 7-day cycle.
package main

import (
	"fmt"
	"log"
	"time"

	tarm "github.com/tarm-project/tarm"
)

func main() {
	db := tarm.NewMemDB()
	dict := db.Dict()

	evenings := dict.InternAll("/login", "/checkout")
	batch := dict.InternAll("/api/export", "/api/report")
	for i := 0; i < 200; i++ {
		dict.Intern(fmt.Sprintf("/page/%03d", i))
	}

	evening, err := tarm.ParsePattern("hour in (18..20)")
	if err != nil {
		log.Fatal(err)
	}
	// Monday mornings: weekday 1, hours 6-7.
	mondayMorning, _ := tarm.ParsePattern("weekday in (mon) and hour in (6..7)")

	start := time.Date(2024, 3, 4, 0, 0, 0, 0, time.UTC) // a Monday
	cfg := tarm.TemporalConfig{
		Quest:        tarm.QuestConfig{NItems: 200, NPatterns: 60, AvgTxLen: 5, AvgPatLen: 2},
		Start:        start,
		Granularity:  tarm.Hour,
		NGranules:    6 * 7 * 24, // six weeks of hours
		TxPerGranule: 30,
		Rules: []tarm.PlantedRule{
			{Name: "evening", Items: evenings, Pattern: evening, PInside: 0.35, POutside: 0.01},
			{Name: "batch", Items: batch, Pattern: mondayMorning, PInside: 0.5, POutside: 0.002},
		},
	}
	sessions, err := tarm.GenerateTemporal(cfg, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d sessions over six weeks (hour granularity)\n\n", sessions.Len())

	mine := tarm.Config{
		Granularity:   tarm.Hour,
		MinSupport:    0.15,
		MinConfidence: 0.6,
		MinFreq:       0.8,
		MaxK:          3,
	}

	fmt.Println("== Calendar periodicities (Task II) ==")
	cals, err := tarm.MineCalendarPeriodicities(sessions, mine, tarm.CycleConfig{MinReps: 6})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range cals {
		fmt.Printf("  %s => %s when %s (freq %.2f)\n",
			dict.Names(r.Rule.Antecedent), dict.Names(r.Rule.Consequent), r.Feature, r.Freq)
	}

	fmt.Println("\n== Arithmetic cycles up to one week (Task II) ==")
	// 168 hours = one week; the Monday-morning batch shows up as
	// 168-hour cycles at the two morning offsets. Long cycles have few
	// occurrences in six weeks, so demand near-perfect regularity to
	// keep coincidences out.
	strict := mine
	strict.MinFreq = 0.95
	cycles, err := tarm.MineCycles(sessions, strict, tarm.CycleConfig{MaxLen: 168, MinReps: 4})
	if err != nil {
		log.Fatal(err)
	}
	shown := 0
	for _, r := range cycles {
		if r.Cycle.Length < 24 {
			continue // daily sub-cycles of the evening rule; noisy to list
		}
		fmt.Printf("  %s => %s %s (freq %.2f)\n",
			dict.Names(r.Rule.Antecedent), dict.Names(r.Rule.Consequent), r.Cycle, r.Freq)
		shown++
	}
	if shown == 0 {
		fmt.Println("  (no cycles of length ≥ 24h)")
	}

	fmt.Println("\n== What happens during evenings? (Task III) ==")
	during, err := tarm.MineDuringExpr(sessions, mine, "hour in (18..20)")
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range during {
		fmt.Printf("  %s => %s (supp %.3f, conf %.2f)\n",
			dict.Names(r.Rule.Antecedent), dict.Names(r.Rule.Consequent),
			r.Rule.Support, r.Rule.Confidence)
	}
}
