// TML tour: a scripted IQMS session showing the paper's Figure-1 loop —
// understand the data with SQL, design and run a mining task in TML,
// inspect the result, refine, repeat. Everything goes through the same
// Session the interactive cmd/iqms uses.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	tarm "github.com/tarm-project/tarm"
)

func main() {
	db := tarm.NewMemDB()
	dict := db.Dict()
	baskets, err := db.CreateTxTable("baskets")
	if err != nil {
		log.Fatal(err)
	}

	// A quarter of daily data: coffee+croissant on weekday mornings,
	// pancakes+syrup on Sundays.
	start := time.Date(2024, 1, 1, 8, 0, 0, 0, time.UTC) // a Monday
	for day := 0; day < 91; day++ {
		at := start.AddDate(0, 0, day)
		sunday := day%7 == 6
		for i := 0; i < 12; i++ {
			var names []string
			if !sunday && i < 9 {
				names = append(names, "coffee", "croissant")
			}
			if sunday && i < 10 {
				names = append(names, "pancakes", "syrup")
			}
			names = append(names, fmt.Sprintf("filler%02d", (day+i)%40))
			baskets.Append(at.Add(time.Duration(i)*time.Minute), dict.InternAll(names...))
		}
	}

	session := tarm.NewSession(db)
	script := []string{
		// 1. Data understanding with SQL.
		`SHOW TABLES`,
		`DESCRIBE baskets`,
		`SELECT item, COUNT(*) AS n FROM baskets GROUP BY item ORDER BY n DESC LIMIT 5`,
		`SELECT COUNT(*) AS transactions, MIN(at) AS first, MAX(at) AS last FROM baskets WHERE item = 'pancakes'`,
		// 2. A first, naive mining task: traditional rules.
		`MINE RULES FROM baskets THRESHOLD SUPPORT 0.3 CONFIDENCE 0.6`,
		// 3. Result analysis says the Sunday pattern is invisible;
		//    redesign the task with a temporal feature.
		`MINE RULES FROM baskets DURING 'weekday in (sun)' THRESHOLD SUPPORT 0.3 CONFIDENCE 0.6 FREQUENCY 0.9`,
		// 4. And ask the system to find the periodicities by itself.
		`MINE CALENDARS FROM baskets THRESHOLD SUPPORT 0.3 CONFIDENCE 0.6 MIN REPS 3 LIMIT 8`,
		`MINE PERIODS FROM baskets THRESHOLD SUPPORT 0.3 CONFIDENCE 0.6 FREQUENCY 0.9 MIN LENGTH 5 LIMIT 8`,
		// 5. Result analysis: inspect the day-by-day history of the
		//    Sunday rule, and preview a task before running it.
		`MINE HISTORY FROM baskets RULE 'pancakes => syrup' THRESHOLD SUPPORT 0.3 CONFIDENCE 0.6 LIMIT 10`,
		`EXPLAIN MINE CYCLES FROM baskets THRESHOLD SUPPORT 0.3 CONFIDENCE 0.6 MAX LENGTH 14`,
	}
	for _, stmt := range script {
		fmt.Printf("sql> %s\n", stmt)
		res, err := session.Exec(stmt)
		if err != nil {
			log.Fatalf("%s: %v", stmt, err)
		}
		tarm.FormatResult(os.Stdout, res)
		fmt.Println()
	}
}
