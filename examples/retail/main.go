// Retail seasonality: a year of synthetic supermarket data with a
// summer rule, a weekend rule and a spring promotion planted on top of
// a Quest background, mined with Task I (valid periods) and Task III
// (calendar-constrained mining) — the paper's motivating scenario.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	tarm "github.com/tarm-project/tarm"
)

func main() {
	db := tarm.NewMemDB()
	dict := db.Dict()

	// Named items; the planted ones are deliberately evocative.
	sunscreen := dict.InternAll("sunscreen", "sunhat")
	bbqPair := dict.InternAll("charcoal", "burgers")
	promo := dict.InternAll("easter_egg", "gift_wrap")
	for i := 0; i < 500; i++ {
		dict.Intern(fmt.Sprintf("sku%04d", i))
	}

	summer, err := tarm.ParsePattern("month in (jun..aug)")
	if err != nil {
		log.Fatal(err)
	}
	weekend, _ := tarm.ParsePattern("weekday in (sat, sun)")
	easter, _ := tarm.ParsePattern("between 1998-03-15 and 1998-04-20")

	cfg := tarm.TemporalConfig{
		Quest:        tarm.QuestConfig{NItems: 500, NPatterns: 100, AvgTxLen: 8, AvgPatLen: 3},
		Start:        time.Date(1998, 1, 1, 0, 0, 0, 0, time.UTC),
		Granularity:  tarm.Day,
		NGranules:    364,
		TxPerGranule: 120,
		Rules: []tarm.PlantedRule{
			{Name: "summer", Items: sunscreen, Pattern: summer, PInside: 0.3, POutside: 0.005},
			{Name: "weekend", Items: bbqPair, Pattern: weekend, PInside: 0.3, POutside: 0.005},
			{Name: "easter", Items: promo, Pattern: easter, PInside: 0.4, POutside: 0.003},
		},
	}
	generated, err := tarm.GenerateTemporal(cfg, 42)
	if err != nil {
		log.Fatal(err)
	}
	// Copy into the database so the IQMS session can query it too.
	baskets, err := db.CreateTxTable("baskets")
	if err != nil {
		log.Fatal(err)
	}
	generated.Each(func(tx tarm.Tx) bool {
		baskets.Append(tx.At, tx.Items)
		return true
	})
	fmt.Printf("generated %d transactions over 364 days\n\n", baskets.Len())

	mine := tarm.Config{
		Granularity:   tarm.Day,
		MinSupport:    0.15,
		MinConfidence: 0.6,
		MinFreq:       0.8,
		MaxK:          3,
	}

	fmt.Println("== Valid periods (Task I) ==")
	periods, err := tarm.MineValidPeriods(baskets, mine, tarm.PeriodConfig{MinLen: 10})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range periods {
		fmt.Printf("  %s => %s during %s (freq %.2f, conf %.2f)\n",
			dict.Names(r.Rule.Antecedent), dict.Names(r.Rule.Consequent),
			r.Interval.Format(tarm.Day), r.Freq, r.Rule.Confidence)
	}

	fmt.Println("\n== What sells together on summer weekends? (Task III) ==")
	during, err := tarm.MineDuringExpr(baskets, mine, "month in (jun..aug) and weekday in (sat, sun)")
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range during {
		fmt.Printf("  %s => %s (supp %.3f, conf %.2f, freq %.2f)\n",
			dict.Names(r.Rule.Antecedent), dict.Names(r.Rule.Consequent),
			r.Rule.Support, r.Rule.Confidence, r.Freq)
	}

	fmt.Println("\n== The same through the IQMS session (TML) ==")
	session := tarm.NewSession(db)
	res, err := session.Exec(`MINE CALENDARS FROM baskets THRESHOLD SUPPORT 0.15 CONFIDENCE 0.6 FREQUENCY 0.8 MIN REPS 4 LIMIT 12`)
	if err != nil {
		log.Fatal(err)
	}
	tarm.FormatResult(os.Stdout, res)
}
