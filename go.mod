module github.com/tarm-project/tarm

go 1.22
