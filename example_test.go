package tarm_test

import (
	"fmt"
	"time"

	tarm "github.com/tarm-project/tarm"
)

// build a two-week table where pancakes+syrup sell only on Sundays.
func sundayTable() (*tarm.DB, *tarm.TxTable) {
	db := tarm.NewMemDB()
	baskets, _ := db.CreateTxTable("baskets")
	start := time.Date(2024, 1, 1, 9, 0, 0, 0, time.UTC) // a Monday
	for day := 0; day < 14; day++ {
		at := start.AddDate(0, 0, day)
		sunday := day%7 == 6
		for i := 0; i < 8; i++ {
			names := []string{"coffee"}
			if sunday && i < 7 {
				names = append(names, "pancakes", "syrup")
			}
			baskets.Append(at.Add(time.Duration(i)*time.Minute), db.Dict().InternAll(names...))
		}
	}
	return db, baskets
}

func ExampleMineCalendarPeriodicities() {
	db, baskets := sundayTable()
	cfg := tarm.Config{
		Granularity:   tarm.Day,
		MinSupport:    0.5,
		MinConfidence: 0.7,
		MinFreq:       1.0,
	}
	rules, _ := tarm.MineCalendarPeriodicities(baskets, cfg, tarm.CycleConfig{MinReps: 2})
	for _, r := range rules {
		if r.Rule.Antecedent.Equal(db.Dict().InternAll("pancakes")) && r.Rule.Consequent.Equal(db.Dict().InternAll("syrup")) {
			fmt.Printf("%s => %s when %s\n",
				db.Dict().Names(r.Rule.Antecedent),
				db.Dict().Names(r.Rule.Consequent),
				r.Feature)
		}
	}
	// Output:
	// {pancakes} => {syrup} when weekday in (7)
}

func ExampleMineDuringExpr() {
	db, baskets := sundayTable()
	cfg := tarm.Config{
		Granularity:   tarm.Day,
		MinSupport:    0.5,
		MinConfidence: 0.7,
		MinFreq:       1.0,
	}
	rules, _ := tarm.MineDuringExpr(baskets, cfg, "weekday in (sun)")
	for _, r := range rules {
		if r.Rule.Antecedent.Equal(db.Dict().InternAll("pancakes")) && r.Rule.Consequent.Equal(db.Dict().InternAll("syrup")) {
			fmt.Printf("%s => %s (conf %.2f during Sundays)\n",
				db.Dict().Names(r.Rule.Antecedent),
				db.Dict().Names(r.Rule.Consequent),
				r.Rule.Confidence)
		}
	}
	// Output:
	// {pancakes} => {syrup} (conf 1.00 during Sundays)
}

func ExampleNewSession() {
	db, _ := sundayTable()
	session := tarm.NewSession(db)
	res, _ := session.Exec(`SELECT item, COUNT(*) AS n FROM baskets GROUP BY item ORDER BY n DESC LIMIT 1`)
	fmt.Println(res.Cols[0], res.Rows[0][0].Display(), res.Rows[0][1].Display())
	// Output:
	// item coffee 112
}

func ExampleParsePattern() {
	p, _ := tarm.ParsePattern("month in (jun..aug) and weekday in (sat, sun)")
	julySaturday := time.Date(2024, 7, 6, 0, 0, 0, 0, time.UTC)
	g := tarm.Granule(julySaturday.Unix() / 86400)
	fmt.Println(p.Matches(tarm.Day, g))
	// Output:
	// true
}
