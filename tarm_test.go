package tarm

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestFacadeEndToEnd exercises the whole public surface: database,
// dictionary, generation, the three mining tasks, the baseline, the
// pattern language and the IQMS session.
func TestFacadeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(filepath.Join(dir, "shop"))
	if err != nil {
		t.Fatal(err)
	}
	dict := db.Dict()
	weekendPair := dict.InternAll("chips", "beer")

	weekend, err := ParsePattern("weekday in (sat, sun)")
	if err != nil {
		t.Fatal(err)
	}
	generated, err := GenerateTemporal(TemporalConfig{
		Quest:        QuestConfig{NItems: 100, NPatterns: 30, AvgTxLen: 6, AvgPatLen: 3},
		Start:        time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC),
		Granularity:  Day,
		NGranules:    84,
		TxPerGranule: 60,
		Rules: []PlantedRule{{
			Name: "weekend", Items: weekendPair, Pattern: weekend,
			PInside: 0.4, POutside: 0.005,
		}},
	}, 11)
	if err != nil {
		t.Fatal(err)
	}
	baskets, err := db.CreateTxTable("baskets")
	if err != nil {
		t.Fatal(err)
	}
	generated.Each(func(tx Tx) bool {
		baskets.Append(tx.At, tx.Items)
		return true
	})
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	cfg := Config{Granularity: Day, MinSupport: 0.2, MinConfidence: 0.6, MinFreq: 0.8, MaxK: 3}

	// Task II calendars must see the weekend rule.
	cals, err := MineCalendarPeriodicities(baskets, cfg, CycleConfig{MinReps: 4})
	if err != nil {
		t.Fatal(err)
	}
	foundWeekend := false
	for _, r := range cals {
		if r.Rule.Antecedent.Union(r.Rule.Consequent).Equal(weekendPair) &&
			strings.Contains(r.Feature.String(), "weekday in (6..7)") {
			foundWeekend = true
		}
	}
	if !foundWeekend {
		t.Error("weekend calendar periodicity not recovered through the facade")
	}

	// The traditional baseline must miss it (overall support ~0.12).
	trad, err := MineTraditional(baskets, 0.2, 0.6, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range trad {
		if r.Antecedent.Union(r.Consequent).Equal(weekendPair) {
			t.Error("traditional baseline found the weekend rule at 0.2 support")
		}
	}

	// Task III through the session, after reopening from disk.
	db2, err := Open(filepath.Join(dir, "shop"))
	if err != nil {
		t.Fatal(err)
	}
	session := NewSession(db2)
	res, err := session.Exec(`MINE RULES FROM baskets DURING 'weekday in (sat, sun)' THRESHOLD SUPPORT 0.2 CONFIDENCE 0.6 FREQUENCY 0.8 MAX SIZE 3`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range res.Rows {
		if row[0].AsString() == "{chips}" || row[0].AsString() == "{beer}" {
			found = true
		}
	}
	if !found {
		t.Errorf("session mining missed the weekend rule; rows: %v", res.Rows)
	}

	// SQL over the reloaded data.
	res, err = session.Exec(`SELECT COUNT(*) AS n FROM baskets WHERE item = 'chips'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() == 0 {
		t.Errorf("SQL count over reloaded data = %v", res.Rows)
	}

	// Task I and plain cycles execute without error on the same data.
	if _, err := MineValidPeriods(baskets, cfg, PeriodConfig{}); err != nil {
		t.Errorf("MineValidPeriods: %v", err)
	}
	if _, err := MineCycles(baskets, cfg, CycleConfig{MaxLen: 7, MinReps: 4}); err != nil {
		t.Errorf("MineCycles: %v", err)
	}
	if _, err := MineDuring(baskets, cfg, weekend); err != nil {
		t.Errorf("MineDuring: %v", err)
	}
}

func TestFacadeHelpers(t *testing.T) {
	s := NewItemset(3, 1, 3)
	if s.Len() != 2 || !s.Contains(1) {
		t.Errorf("NewItemset = %v", s)
	}
	d := NewDict()
	if d.Intern("x") != 0 {
		t.Error("fresh dict first id != 0")
	}
	g, err := ParseGranularity("months")
	if err != nil || g != Month {
		t.Errorf("ParseGranularity = %v, %v", g, err)
	}
	mem := NewMemDB()
	if mem.Dict() == nil {
		t.Error("NewMemDB has no dict")
	}
}
