// Command tarmine is the batch front end: it executes a single TML or
// SQL statement against a database directory, or runs the experiment
// suite that regenerates the tables and figures of EXPERIMENTS.md.
//
// Usage:
//
//	tarmine -db ./data -e "MINE CYCLES FROM baskets THRESHOLD SUPPORT 0.1 CONFIDENCE 0.6"
//	tarmine -db ./data -e "MINE ..." -stats stats.json   # dump mining telemetry
//	tarmine -db ./data -e "MINE ..." -progress           # live per-pass progress on stderr
//	tarmine -db ./data -e "MINE ..." -trace              # span tree of the run on stderr
//	tarmine -experiment e1          # one experiment
//	tarmine -experiment all         # the full suite (slow)
//	tarmine -backend bitmap -workers 4 -experiment e2
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/tarm-project/tarm/internal/apriori"
	"github.com/tarm-project/tarm/internal/bench"
	"github.com/tarm-project/tarm/internal/clihelp"
	"github.com/tarm-project/tarm/internal/minisql"
	"github.com/tarm-project/tarm/internal/obs"
	"github.com/tarm-project/tarm/internal/tml"
)

func main() {
	var mf clihelp.MiningFlags
	dbDir := flag.String("db", "", "database directory")
	stmt := flag.String("e", "", "statement to execute (TML or SQL)")
	experiment := flag.String("experiment", "", "experiment id (e1..e17) or 'all'")
	jsonPath := flag.String("json", "", "with -experiment: also write the result tables as JSON to this file ('-' = stdout)")
	statsPath := flag.String("stats", "", "write mining telemetry JSON to this file ('-' = stdout; the result table then goes to stderr)")
	progress := flag.Bool("progress", false, "render per-pass mining progress to stderr")
	traceFlag := flag.Bool("trace", false, "render the statement's span tree to stderr after the run")
	mf.RegisterMining(flag.CommandLine)
	mf.RegisterTimeout(flag.CommandLine)
	mf.RegisterDurability(flag.CommandLine)
	flag.Parse()

	backend, err := mf.Backend()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tarmine:", err)
		os.Exit(2)
	}
	bench.Backend = backend
	bench.Workers = mf.Workers
	if *progress {
		bench.Tracer = obs.NewProgressTracer(os.Stderr)
	}

	switch {
	case *experiment != "":
		if err := runExperiments(*experiment, *jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "tarmine:", err)
			os.Exit(1)
		}
	case *stmt != "":
		if *dbDir == "" {
			fmt.Fprintln(os.Stderr, "tarmine: -e needs -db")
			os.Exit(2)
		}
		var tracers []obs.Tracer
		var collect *obs.CollectTracer
		if *statsPath != "" {
			collect = obs.NewCollectTracer()
			tracers = append(tracers, collect)
		}
		if *progress {
			tracers = append(tracers, obs.NewProgressTracer(os.Stderr))
		}
		// With -stats - the JSON owns stdout; the result table moves to
		// stderr so both streams stay machine-readable.
		out := io.Writer(os.Stdout)
		if *statsPath == "-" {
			out = os.Stderr
		}
		ctx, cancel := mf.StatementContext(context.Background())
		defer cancel()
		var trace *obs.Trace
		if *traceFlag {
			trace = obs.NewTrace("")
			ctx = obs.ContextWithTrace(ctx, trace)
		}
		if err := execStatement(ctx, &mf, *dbDir, *stmt, backend, out, obs.Multi(tracers...)); err != nil {
			fmt.Fprintln(os.Stderr, "tarmine:", err)
			os.Exit(1)
		}
		if trace != nil {
			trace.WriteText(os.Stderr)
		}
		if collect != nil {
			if err := writeStats(*statsPath, *stmt, collect.Stats()); err != nil {
				fmt.Fprintln(os.Stderr, "tarmine:", err)
				os.Exit(1)
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// execStatement opens the database (durably under -wal) and runs one
// TML or SQL statement under ctx, feeding any mining telemetry to
// tracer. A mining statement cancelled by -timeout returns
// context.DeadlineExceeded. A durable database is checkpointed and
// closed before returning, so a batch INSERT restarts from segments.
func execStatement(ctx context.Context, mf *clihelp.MiningFlags, dbDir, stmt string, backend apriori.Backend, w io.Writer, tracer obs.Tracer) error {
	db, err := mf.OpenDB(dbDir, obs.Default)
	if err != nil {
		return err
	}
	session := tml.NewSession(db)
	session.TML.Backend = backend
	session.TML.Workers = mf.Workers
	session.TML.Tracer = tracer
	res, err := session.ExecContext(ctx, stmt)
	if err != nil {
		if db.Durable() {
			db.Kill() // keep the WAL: nothing acked is lost
		}
		return err
	}
	minisql.Format(w, res)
	if db.Durable() {
		return db.Close()
	}
	return nil
}

// writeStats dumps the collected MineStats as indented JSON; "-" writes
// to stdout. The summary block (p50/p95/p99 over pass and operator
// durations) is computed here, at the edge, so the collector stays a
// pure accumulator.
func writeStats(path, stmt string, st *obs.MineStats) error {
	st.Statement = stmt
	st.Summarize()
	buf, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}

// runExperiments executes the selected experiments, rendering each
// table to stdout; with jsonPath set it also writes the tables as a
// JSON array so CI can archive machine-readable results.
func runExperiments(id, jsonPath string) error {
	ids := []string{id}
	if id == "all" {
		ids = bench.ExperimentIDs()
	}
	var tables []bench.Table
	for _, eid := range ids {
		run, ok := bench.Experiments[eid]
		if !ok {
			return fmt.Errorf("unknown experiment %q (have %v)", eid, bench.ExperimentIDs())
		}
		table, err := run()
		if err != nil {
			return fmt.Errorf("%s: %w", eid, err)
		}
		fmt.Println(table.String())
		tables = append(tables, table)
	}
	if jsonPath == "" {
		return nil
	}
	buf, err := json.MarshalIndent(tables, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if jsonPath == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(jsonPath, buf, 0o644)
}
