package main

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/tarm-project/tarm/internal/apriori"
	"github.com/tarm-project/tarm/internal/itemset"
	"github.com/tarm-project/tarm/internal/tdb"
)

func TestExecStatement(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := tdb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	baskets, err := db.CreateTxTable("baskets")
	if err != nil {
		t.Fatal(err)
	}
	bread := db.Dict().Intern("bread")
	milk := db.Dict().Intern("milk")
	at := time.Date(2024, 1, 1, 9, 0, 0, 0, time.UTC)
	for d := 0; d < 14; d++ {
		for i := 0; i < 6; i++ {
			baskets.Append(at.AddDate(0, 0, d), itemset.New(bread, milk))
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := execStatement(dir, `MINE RULES FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.5`, apriori.BackendBitmap, 2, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "{bread}") {
		t.Errorf("output: %q", out.String())
	}

	out.Reset()
	if err := execStatement(dir, `SELECT COUNT(*) AS n FROM baskets`, apriori.BackendAuto, 0, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "168") { // 14 days × 6 tx × 2 items
		t.Errorf("SQL output: %q", out.String())
	}

	if err := execStatement(dir, `MINE garbage`, apriori.BackendAuto, 0, &out); err == nil {
		t.Error("bad statement accepted")
	}
}

func TestRunExperimentsUnknown(t *testing.T) {
	if err := runExperiments("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
}
