package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/tarm-project/tarm/internal/apriori"
	"github.com/tarm-project/tarm/internal/clihelp"
	"github.com/tarm-project/tarm/internal/itemset"
	"github.com/tarm-project/tarm/internal/obs"
	"github.com/tarm-project/tarm/internal/tdb"
)

func fixtureDir(t *testing.T) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "db")
	db, err := tdb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	baskets, err := db.CreateTxTable("baskets")
	if err != nil {
		t.Fatal(err)
	}
	bread := db.Dict().Intern("bread")
	milk := db.Dict().Intern("milk")
	at := time.Date(2024, 1, 1, 9, 0, 0, 0, time.UTC)
	for d := 0; d < 14; d++ {
		for i := 0; i < 6; i++ {
			baskets.Append(at.AddDate(0, 0, d), itemset.New(bread, milk))
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestExecStatement(t *testing.T) {
	dir := fixtureDir(t)
	var out strings.Builder
	if err := execStatement(context.Background(), &clihelp.MiningFlags{Workers: 2}, dir, `MINE RULES FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.5`, apriori.BackendBitmap, &out, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "{bread}") {
		t.Errorf("output: %q", out.String())
	}

	out.Reset()
	if err := execStatement(context.Background(), &clihelp.MiningFlags{}, dir, `SELECT COUNT(*) AS n FROM baskets`, apriori.BackendAuto, &out, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "168") { // 14 days × 6 tx × 2 items
		t.Errorf("SQL output: %q", out.String())
	}

	if err := execStatement(context.Background(), &clihelp.MiningFlags{}, dir, `MINE garbage`, apriori.BackendAuto, &out, nil); err == nil {
		t.Error("bad statement accepted")
	}
}

// TestStatsDump drives the -stats path end to end: a traced statement
// followed by writeStats must produce JSON with per-level counts and
// the chosen backend.
func TestStatsDump(t *testing.T) {
	dir := fixtureDir(t)
	collect := obs.NewCollectTracer()
	var progress, out strings.Builder
	tracer := obs.Multi(collect, obs.NewProgressTracer(&progress))
	stmt := `MINE RULES FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.5`
	if err := execStatement(context.Background(), &clihelp.MiningFlags{Workers: 1}, dir, stmt, apriori.BackendBitmap, &out, tracer); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "stats.json")
	if err := writeStats(path, stmt, collect.Stats()); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var st obs.MineStats
	if err := json.Unmarshal(buf, &st); err != nil {
		t.Fatalf("stats JSON invalid: %v\n%s", err, buf)
	}
	if st.Statement != stmt {
		t.Errorf("statement = %q", st.Statement)
	}
	if len(st.Levels) == 0 {
		t.Fatal("no levels in stats JSON")
	}
	for _, l := range st.Levels {
		if l.Pruned+l.Counted != l.Generated {
			t.Errorf("L%d pruned %d + counted %d != generated %d", l.Level, l.Pruned, l.Counted, l.Generated)
		}
	}
	if st.Backend != "bitmap" {
		t.Errorf("backend = %q, want bitmap", st.Backend)
	}
	if !strings.Contains(progress.String(), "frequent") {
		t.Errorf("progress output: %q", progress.String())
	}
}

func TestRunExperimentsUnknown(t *testing.T) {
	if err := runExperiments("nope", ""); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestExecStatementDurable drives -wal end to end: a legacy directory
// is migrated on open, the statement runs, and the close checkpoints —
// after which the directory only opens durably.
func TestExecStatementDurable(t *testing.T) {
	dir := fixtureDir(t)
	mf := &clihelp.MiningFlags{WAL: true, FsyncName: "always"}
	var out strings.Builder
	if err := execStatement(context.Background(), mf, dir, `SELECT COUNT(*) AS n FROM baskets`, apriori.BackendAuto, &out, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "168") {
		t.Errorf("durable output: %q", out.String())
	}
	if _, err := tdb.Open(dir); err == nil {
		t.Error("plain Open accepted a WAL-backed directory")
	}
}
