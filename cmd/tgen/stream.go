// Stream mode: instead of writing a database directory, tgen generates
// the same synthetic workload and feeds it to a running tarmd through
// POST /v1/append, paced to a target transaction rate. This is the
// write-traffic driver for the warm-cache maintenance experiments: a
// miner keeps issuing statements while tgen -stream dirties granules
// underneath it.

package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"github.com/tarm-project/tarm/internal/gen"
	"github.com/tarm-project/tarm/internal/tdb"
	"github.com/tarm-project/tarm/internal/timegran"
)

// streamTx is the wire shape of one transaction in a /v1/append batch.
type streamTx struct {
	At    time.Time `json:"at"`
	Items []string  `json:"items"`
}

// stream generates the configured workload in memory and POSTs it to
// baseURL in batches, sleeping between sends so the long-run rate
// tracks txRate transactions per second (0 = as fast as possible).
func stream(baseURL, table string, days int, granName string, txPer, items, patterns int, avgT, avgI float64, start string, seed int64, plants []string, txRate float64, batch int) error {
	gran, err := timegran.ParseGranularity(granName)
	if err != nil {
		return err
	}
	startAt, err := time.ParseInLocation("2006-01-02", start, time.UTC)
	if err != nil {
		return fmt.Errorf("bad -start %q: %w", start, err)
	}
	if batch <= 0 {
		return fmt.Errorf("bad -batch %d: must be positive", batch)
	}

	// Generate against a throwaway in-memory dictionary; the server
	// re-interns by name on arrival.
	db := tdb.NewMemDB()
	for i := 0; i < items; i++ {
		db.Dict().Intern(fmt.Sprintf("item%04d", i))
	}
	cfg := gen.TemporalConfig{
		Quest:        gen.QuestConfig{NItems: items, NPatterns: patterns, AvgTxLen: avgT, AvgPatLen: avgI},
		Start:        startAt,
		Granularity:  gran,
		NGranules:    days,
		TxPerGranule: txPer,
	}
	for _, spec := range plants {
		pr, err := parsePlant(spec, db)
		if err != nil {
			return err
		}
		cfg.Rules = append(cfg.Rules, pr)
	}
	src, err := gen.GenerateTemporal(cfg, seed)
	if err != nil {
		return err
	}
	var txs []streamTx
	src.Each(func(tx tdb.Tx) bool {
		names := make([]string, len(tx.Items))
		for i, it := range tx.Items {
			names[i] = db.Dict().MustName(it)
		}
		txs = append(txs, streamTx{At: tx.At, Items: names})
		return true
	})

	endpoint := baseURL + "/v1/append"
	client := &http.Client{Timeout: 30 * time.Second}
	t0 := time.Now()
	sent := 0
	var lastEpoch int64
	for off := 0; off < len(txs); off += batch {
		end := off + batch
		if end > len(txs) {
			end = len(txs)
		}
		// Pace against the ideal schedule, not the previous sleep: the
		// send time of transaction n is t0 + n/rate, so slow batches are
		// caught up rather than compounded.
		if txRate > 0 {
			due := t0.Add(time.Duration(float64(off) / txRate * float64(time.Second)))
			if d := time.Until(due); d > 0 {
				time.Sleep(d)
			}
		}
		epoch, err := postBatch(client, endpoint, table, txs[off:end])
		if err != nil {
			return fmt.Errorf("batch at tx %d: %w", off, err)
		}
		lastEpoch = epoch
		sent += end - off
	}
	elapsed := time.Since(t0)
	fmt.Printf("streamed %d transactions to %s (table %s) in %.2fs (%.0f tx/s, target %.0f), server epoch %d\n",
		sent, baseURL, table, elapsed.Seconds(), float64(sent)/elapsed.Seconds(), txRate, lastEpoch)
	return nil
}

// postBatch sends one append batch, retrying on 429/503 backpressure
// with the server's Retry-After hint. Returns the post-batch epoch.
func postBatch(client *http.Client, endpoint, table string, txs []streamTx) (int64, error) {
	body, err := json.Marshal(map[string]any{"table": table, "transactions": txs})
	if err != nil {
		return 0, err
	}
	const attempts = 5
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(endpoint, "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			var out struct {
				Epoch int64 `json:"epoch"`
			}
			if err := json.Unmarshal(raw, &out); err != nil {
				return 0, fmt.Errorf("bad response %s: %w", raw, err)
			}
			return out.Epoch, nil
		case (resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable) && attempt < attempts:
			wait := 200 * time.Millisecond
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				if secs, err := strconv.Atoi(ra); err == nil {
					wait = time.Duration(secs) * time.Second
				}
			}
			time.Sleep(wait)
		default:
			return 0, fmt.Errorf("server returned %d: %s", resp.StatusCode, raw)
		}
	}
}
