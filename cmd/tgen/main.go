// Command tgen generates synthetic temporal transaction databases: a
// Quest-style background (T·.I·) spread over a span of granules, with
// optional planted temporal rules for recovery experiments.
//
// Usage:
//
//	tgen -out ./data -days 364 -txper 100 -items 1000 -t 10 -i 4 \
//	     -plant 'summer|hat,sunscreen|month in (jun..aug)|0.3|0.005' \
//	     -plant 'weekend|chips,beer|weekday in (sat,sun)|0.3|0.005'
//
// Each -plant is name|item1,item2,...|pattern|pInside|pOutside. Items
// are names interned into the database dictionary; the pattern uses the
// calendar-algebra syntax of the DURING clause.
//
// With -stream, tgen feeds the generated workload to a running tarmd
// instead of writing a directory, paced to -rate transactions per
// second in -batch sized POST /v1/append requests:
//
//	tgen -stream http://localhost:8080 -table baskets -days 7 -rate 500
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/tarm-project/tarm/internal/gen"
	"github.com/tarm-project/tarm/internal/tdb"
	"github.com/tarm-project/tarm/internal/timegran"
)

type plantFlags []string

func (p *plantFlags) String() string { return strings.Join(*p, "; ") }
func (p *plantFlags) Set(v string) error {
	*p = append(*p, v)
	return nil
}

func main() {
	var plants plantFlags
	out := flag.String("out", "", "output database directory (required unless -stream)")
	streamURL := flag.String("stream", "", "stream to a tarmd base URL via POST /v1/append instead of writing -out")
	rate := flag.Float64("rate", 200, "stream mode: target transactions per second (0 = unpaced)")
	batch := flag.Int("batch", 50, "stream mode: transactions per append request")
	table := flag.String("table", "baskets", "transaction table name")
	days := flag.Int("days", 364, "number of granules to generate")
	granName := flag.String("granularity", "day", "granularity of the time axis")
	txPer := flag.Int("txper", 100, "mean transactions per granule")
	items := flag.Int("items", 1000, "item universe size")
	patterns := flag.Int("patterns", 200, "number of Quest patterns")
	avgT := flag.Float64("t", 10, "mean transaction size |T|")
	avgI := flag.Float64("i", 4, "mean pattern size |I|")
	start := flag.String("start", "1998-01-01", "start date (YYYY-MM-DD)")
	seed := flag.Int64("seed", 1998, "random seed")
	flag.Var(&plants, "plant", "planted rule: name|items|pattern|pIn|pOut (repeatable)")
	flag.Parse()

	if *streamURL != "" {
		if err := stream(*streamURL, *table, *days, *granName, *txPer, *items, *patterns, *avgT, *avgI, *start, *seed, plants, *rate, *batch); err != nil {
			fmt.Fprintln(os.Stderr, "tgen:", err)
			os.Exit(1)
		}
		return
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "tgen: -out is required (or use -stream)")
		flag.Usage()
		os.Exit(2)
	}
	if err := generate(*out, *table, *days, *granName, *txPer, *items, *patterns, *avgT, *avgI, *start, *seed, plants); err != nil {
		fmt.Fprintln(os.Stderr, "tgen:", err)
		os.Exit(1)
	}
}

func generate(out, table string, days int, granName string, txPer, items, patterns int, avgT, avgI float64, start string, seed int64, plants []string) error {
	gran, err := timegran.ParseGranularity(granName)
	if err != nil {
		return err
	}
	startAt, err := time.ParseInLocation("2006-01-02", start, time.UTC)
	if err != nil {
		return fmt.Errorf("bad -start %q: %w", start, err)
	}
	db, err := tdb.Open(out)
	if err != nil {
		return err
	}
	t0 := time.Now()
	// Intern background item names first so generated ids resolve.
	for i := 0; i < items; i++ {
		db.Dict().Intern(fmt.Sprintf("item%04d", i))
	}
	cfg := gen.TemporalConfig{
		Quest:        gen.QuestConfig{NItems: items, NPatterns: patterns, AvgTxLen: avgT, AvgPatLen: avgI},
		Start:        startAt,
		Granularity:  gran,
		NGranules:    days,
		TxPerGranule: txPer,
	}
	for _, spec := range plants {
		pr, err := parsePlant(spec, db)
		if err != nil {
			return err
		}
		cfg.Rules = append(cfg.Rules, pr)
	}
	src, err := gen.GenerateTemporal(cfg, seed)
	if err != nil {
		return err
	}
	dst, ok := db.TxTable(table)
	if !ok {
		dst, err = db.CreateTxTable(table)
		if err != nil {
			return err
		}
	}
	src.Each(func(tx tdb.Tx) bool {
		dst.Append(tx.At, tx.Items)
		return true
	})
	if err := db.Flush(); err != nil {
		return err
	}
	name := gen.Name(cfg.Quest, dst.Len())
	elapsed := time.Since(t0)
	rate := float64(dst.Len()) / elapsed.Seconds()
	fmt.Printf("wrote %s: %d transactions into %s/%s (%d planted rules) in %.2fs (%.0f tx/s)\n",
		name, dst.Len(), out, table, len(cfg.Rules), elapsed.Seconds(), rate)
	return nil
}

// parsePlant parses name|items|pattern|pIn|pOut.
func parsePlant(spec string, db *tdb.DB) (gen.PlantedRule, error) {
	parts := strings.Split(spec, "|")
	if len(parts) != 5 {
		return gen.PlantedRule{}, fmt.Errorf("bad -plant %q: want name|items|pattern|pIn|pOut", spec)
	}
	names := strings.Split(parts[1], ",")
	if len(names) < 2 {
		return gen.PlantedRule{}, fmt.Errorf("bad -plant %q: need at least 2 items", spec)
	}
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	items := db.Dict().InternAll(names...)
	pattern, err := timegran.ParsePattern(parts[2])
	if err != nil {
		return gen.PlantedRule{}, fmt.Errorf("bad -plant %q: %w", spec, err)
	}
	pIn, err := strconv.ParseFloat(parts[3], 64)
	if err != nil {
		return gen.PlantedRule{}, fmt.Errorf("bad -plant %q: pInside: %w", spec, err)
	}
	pOut, err := strconv.ParseFloat(parts[4], 64)
	if err != nil {
		return gen.PlantedRule{}, fmt.Errorf("bad -plant %q: pOutside: %w", spec, err)
	}
	return gen.PlantedRule{
		Name:     parts[0],
		Items:    items,
		Pattern:  pattern,
		PInside:  pIn,
		POutside: pOut,
	}, nil
}
