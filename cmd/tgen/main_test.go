package main

import (
	"path/filepath"
	"testing"

	"github.com/tarm-project/tarm/internal/tdb"
)

func TestGenerateWritesDatabase(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	err := generate(dir, "baskets", 28, "day", 15, 100, 30, 6, 3, "2024-01-01", 7,
		[]string{"weekend|chips,beer|weekday in (sat,sun)|0.4|0.01"})
	if err != nil {
		t.Fatal(err)
	}
	db, err := tdb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tbl, ok := db.TxTable("baskets")
	if !ok {
		t.Fatal("baskets table missing")
	}
	if tbl.Len() < 28*5 {
		t.Errorf("only %d transactions generated", tbl.Len())
	}
	if _, ok := db.Dict().Lookup("chips"); !ok {
		t.Error("planted item name not interned")
	}
	if _, ok := db.Dict().Lookup("item0099"); !ok {
		t.Error("background item names not interned")
	}
}

func TestGenerateErrors(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name string
		fn   func() error
	}{
		{"bad granularity", func() error {
			return generate(dir, "b", 10, "eon", 5, 50, 10, 5, 2, "2024-01-01", 1, nil)
		}},
		{"bad start", func() error {
			return generate(dir, "b", 10, "day", 5, 50, 10, 5, 2, "01/01/2024", 1, nil)
		}},
		{"bad plant arity", func() error {
			return generate(dir, "b", 10, "day", 5, 50, 10, 5, 2, "2024-01-01", 1, []string{"x|y"})
		}},
		{"plant one item", func() error {
			return generate(dir, "b", 10, "day", 5, 50, 10, 5, 2, "2024-01-01", 1, []string{"x|solo|always|0.5|0.01"})
		}},
		{"plant bad pattern", func() error {
			return generate(dir, "b", 10, "day", 5, 50, 10, 5, 2, "2024-01-01", 1, []string{"x|a,b|month in (99)|0.5|0.01"})
		}},
		{"plant bad prob", func() error {
			return generate(dir, "b", 10, "day", 5, 50, 10, 5, 2, "2024-01-01", 1, []string{"x|a,b|always|high|0.01"})
		}},
	}
	for _, c := range cases {
		if err := c.fn(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestPlantFlags(t *testing.T) {
	var p plantFlags
	if err := p.Set("a"); err != nil {
		t.Fatal(err)
	}
	if err := p.Set("b"); err != nil {
		t.Fatal(err)
	}
	if p.String() != "a; b" {
		t.Errorf("String = %q", p.String())
	}
}
