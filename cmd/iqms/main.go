// Command iqms is the integrated query and mining system: a REPL that
// accepts both SQL (data understanding) and TML MINE statements (ad-hoc
// temporal mining) over one database, implementing the iterative
// mining process of the paper's Figure 1.
//
// Usage:
//
//	iqms -db ./data          # open or create a database directory
//	iqms -db ./data -f run.sql  # execute a script, then exit
//	iqms -db ./data -metrics :6060  # serve /metrics, /debug/vars, /debug/pprof
//	iqms -db ./data -wal -fsync always  # WAL-backed storage engine: crash-safe writes
//
// Inside the REPL:
//
//	sql> SELECT item, COUNT(*) FROM baskets GROUP BY item;
//	sql> MINE PERIODS FROM baskets THRESHOLD SUPPORT 0.05 CONFIDENCE 0.6;
//	sql> \trace     # span tree of the statement that just ran
//	sql> \tables    \help    \quit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"sync"
	"time"

	"github.com/tarm-project/tarm/internal/clihelp"
	"github.com/tarm-project/tarm/internal/core"
	"github.com/tarm-project/tarm/internal/minisql"
	"github.com/tarm-project/tarm/internal/obs"
	"github.com/tarm-project/tarm/internal/tdb"
	"github.com/tarm-project/tarm/internal/tml"
)

func main() {
	var mf clihelp.MiningFlags
	dbDir := flag.String("db", "", "database directory (empty: in-memory)")
	script := flag.String("f", "", "execute statements from this file and exit")
	metricsAddr := flag.String("metrics", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :6060)")
	mf.RegisterMining(flag.CommandLine)
	mf.RegisterTimeout(flag.CommandLine)
	mf.RegisterCache(flag.CommandLine)
	mf.RegisterDurability(flag.CommandLine)
	flag.Parse()

	backend, err := mf.Backend()
	if err != nil {
		fmt.Fprintln(os.Stderr, "iqms:", err)
		os.Exit(2)
	}

	var db *tdb.DB
	if *dbDir != "" {
		db, err = mf.OpenDB(*dbDir, obs.Default)
	} else {
		if mf.WAL {
			err = fmt.Errorf("-wal needs a database directory (-db)")
		} else {
			db = tdb.NewMemDB()
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "iqms:", err)
		os.Exit(1)
	}
	if db.Durable() {
		rec := db.Recovery()
		fmt.Fprintf(os.Stderr, "iqms: durable open (fsync %s): replayed %d wal records (%d tx, %d skipped, %d torn bytes) in %s\n",
			db.FsyncPolicy(), rec.Records, rec.AppendedTx, rec.SkippedTx, rec.TornBytes, rec.Wall.Round(time.Millisecond))
	}
	session := tml.NewSession(db)
	session.TML.Backend = backend
	session.TML.Workers = mf.Workers
	session.TML.Cache = core.NewHoldCache(mf.CacheBytes())

	if *metricsAddr != "" {
		session.TML.Tracer = obs.NewRegistryTracer(obs.Default, "")
		if err := clihelp.ServeMetrics("iqms", *metricsAddr, obs.Default); err != nil {
			fmt.Fprintln(os.Stderr, "iqms:", err)
			os.Exit(1)
		}
	}

	if *script != "" {
		f, err := os.Open(*script)
		if err != nil {
			fmt.Fprintln(os.Stderr, "iqms:", err)
			os.Exit(1)
		}
		defer f.Close()
		// Script mode keeps the default SIGINT behaviour: Ctrl-C kills
		// the whole run, as batch tools are expected to.
		if err := run(session, db, f, os.Stdout, os.Stderr, false, execOpts{timeout: mf.Timeout}); err != nil {
			fmt.Fprintln(os.Stderr, "iqms:", err)
			os.Exit(1)
		}
		closeDB(db)
		return
	}
	fmt.Println("IQMS — integrated query and mining system. \\help for help, \\quit to exit.")
	intr := newInterrupts(os.Stderr)
	if err := run(session, db, os.Stdin, os.Stdout, os.Stderr, true, execOpts{timeout: mf.Timeout, intr: intr}); err != nil {
		fmt.Fprintln(os.Stderr, "iqms:", err)
		os.Exit(1)
	}
	closeDB(db)
}

// closeDB checkpoints and closes a durable database on the way out, so
// a clean exit restarts from segment files instead of WAL replay. A
// failed checkpoint is not fatal: the WAL already holds every acked
// append, so the next open replays it.
func closeDB(db *tdb.DB) {
	if !db.Durable() {
		return
	}
	if err := db.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "iqms: close:", err)
	}
}

// execOpts carries the per-statement execution controls of the REPL.
type execOpts struct {
	timeout time.Duration // abort a statement after this long; 0 = no limit
	intr    *interrupts   // Ctrl-C routing; nil = default signal handling
}

// replState is the REPL's cross-statement memory: the trace of the
// statement that last ran (complete or interrupted), shown by \trace,
// and the standing SUBSCRIBE MINE statements registered by \subscribe,
// stepped after every executed statement.
type replState struct {
	lastTrace *obs.Trace
	standings []*standingEntry
	nextSub   int
}

// standingEntry is one REPL-registered standing statement.
type standingEntry struct {
	id int
	st *tml.Standing
}

// interrupts routes SIGINT to the running statement: in an interactive
// session Ctrl-C cancels the statement in flight — the session itself
// stays up — and when nothing is running it just prints a hint, so the
// only ways out remain \quit and EOF.
type interrupts struct {
	mu     sync.Mutex
	cancel context.CancelFunc // non-nil while a statement runs
	errw   io.Writer
}

// newInterrupts installs the SIGINT handler and starts routing.
func newInterrupts(errw io.Writer) *interrupts {
	i := &interrupts{errw: errw}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	go func() {
		for range ch {
			i.mu.Lock()
			cancel := i.cancel
			i.mu.Unlock()
			if cancel != nil {
				cancel()
			} else {
				fmt.Fprintln(i.errw, "interrupt: no statement running (\\quit to exit)")
			}
		}
	}()
	return i
}

// arm registers the running statement's cancel func.
func (i *interrupts) arm(cancel context.CancelFunc) {
	i.mu.Lock()
	i.cancel = cancel
	i.mu.Unlock()
}

// disarm clears it once the statement finishes.
func (i *interrupts) disarm() {
	i.mu.Lock()
	i.cancel = nil
	i.mu.Unlock()
}

// run executes statements from r. Statements may span lines and end at
// ';' (or at end of line for \-commands). In interactive mode errors
// are printed to errw and the loop continues — stdout stays clean for
// result tables; in script mode the first error aborts.
func run(session *tml.Session, db *tdb.DB, r io.Reader, w, errw io.Writer, interactive bool, opts execOpts) error {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	state := &replState{}
	var buf strings.Builder
	prompt := func() {
		if interactive {
			if buf.Len() == 0 {
				fmt.Fprint(w, "sql> ")
			} else {
				fmt.Fprint(w, "...> ")
			}
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			done, err := metaCommand(trimmed, session, db, w, state)
			if err != nil {
				if !interactive {
					return err
				}
				fmt.Fprintln(errw, "error:", err)
			}
			if done {
				return nil
			}
			prompt()
			continue
		}
		if buf.Len() == 0 && trimmed == "" {
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.HasSuffix(trimmed, ";") {
			prompt()
			continue
		}
		stmt := strings.TrimSpace(buf.String())
		buf.Reset()
		if err := execOne(session, stmt, w, opts, state); err != nil {
			if !interactive {
				return err
			}
			fmt.Fprintln(errw, "error:", err)
		}
		prompt()
	}
	if interactive {
		fmt.Fprintln(w)
	}
	return scanner.Err()
}

// execOne runs one statement under the session's controls: an optional
// -timeout deadline, and — interactively — a Ctrl-C cancel armed for
// exactly the statement's duration. A cancelled mining statement
// returns context.Canceled (or DeadlineExceeded) as an ordinary error,
// which the interactive loop prints before the next prompt.
func execOne(session *tml.Session, stmt string, w io.Writer, opts execOpts, state *replState) error {
	ctx := context.Background()
	if opts.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.timeout)
		defer cancel()
	}
	if opts.intr != nil {
		var cancel context.CancelFunc
		ctx, cancel = context.WithCancel(ctx)
		defer cancel()
		opts.intr.arm(cancel)
		defer opts.intr.disarm()
	}
	// Every statement runs under a fresh request-scoped trace; \trace
	// renders the last one — including a failed or interrupted
	// statement's partial tree, which is when a trace matters most.
	trace := obs.NewTrace("")
	ctx = obs.ContextWithTrace(ctx, trace)
	state.lastTrace = trace
	res, err := session.ExecContext(ctx, stmt)
	if err != nil {
		return err
	}
	minisql.Format(w, res)
	// A write may have advanced a table's clock past a granule boundary:
	// step the standing statements so their rule deltas appear right
	// under the statement that caused them.
	stepStandings(ctx, w, state)
	return nil
}

// stepStandings advances every \subscribe-registered standing statement
// and prints the rule deltas of those that refreshed.
func stepStandings(ctx context.Context, w io.Writer, state *replState) {
	for _, e := range state.standings {
		upd, err := e.st.Step(ctx)
		if err != nil {
			fmt.Fprintf(w, "-- subscription %d: %v\n", e.id, err)
			continue
		}
		if upd != nil {
			printSubUpdate(w, e.id, upd)
		}
	}
}

// printSubUpdate renders one emission: a summary line, then one line
// per delta (+ added, - removed, ~ changed).
func printSubUpdate(w io.Writer, id int, upd *tml.SubUpdate) {
	var adds, removes, changes int
	for _, d := range upd.Deltas {
		switch d.Kind {
		case tml.DeltaAdded:
			adds++
		case tml.DeltaRemoved:
			removes++
		default:
			changes++
		}
	}
	head := fmt.Sprintf("-- subscription %d", id)
	if upd.Initial {
		head += " (snapshot)"
	}
	if upd.ClosedLabel != "" {
		head += " closed through " + upd.ClosedLabel
	}
	fmt.Fprintf(w, "%s: %d rule(s), +%d -%d ~%d\n", head, upd.Rules, adds, removes, changes)
	for _, d := range upd.Deltas {
		row := d.Row
		sign := "+"
		switch d.Kind {
		case tml.DeltaRemoved:
			sign, row = "-", d.Prev
		case tml.DeltaChanged:
			sign = "~"
		}
		fmt.Fprintf(w, "%s %s\n", sign, strings.Join(row, "  "))
	}
}

// metaCommand handles \-commands; it reports whether the session
// should end.
func metaCommand(cmd string, session *tml.Session, db *tdb.DB, w io.Writer, state *replState) (quit bool, err error) {
	switch fields := strings.Fields(cmd); fields[0] {
	case "\\quit", "\\q":
		return true, nil
	case "\\trace":
		if state.lastTrace == nil {
			fmt.Fprintln(w, "no statement has run yet")
			return false, nil
		}
		state.lastTrace.WriteText(w)
		return false, nil
	case "\\cache":
		st := session.TML.Cache.Stats()
		if st.MaxBytes == 0 {
			fmt.Fprintln(w, "hold-table cache disabled (-cache 0)")
			return false, nil
		}
		fmt.Fprintf(w, "hits %d  rethresholds %d  misses %d  dedups %d\n", st.Hits, st.Rethresholds, st.Misses, st.Dedups)
		fmt.Fprintf(w, "entries %d  resident %.1f/%d MB  cells %d  evictions %d  invalidations %d\n",
			st.Entries, float64(st.ResidentBytes)/(1<<20), st.MaxBytes>>20, st.ResidentCells, st.Evictions, st.Invalidations)
		return false, nil
	case "\\tables", "\\t":
		for _, n := range db.Names() {
			kind := "table"
			if db.IsTxTable(n) {
				kind = "transactions"
			}
			fmt.Fprintf(w, "%-24s %s\n", n, kind)
		}
		return false, nil
	case "\\save":
		if err := db.Flush(); err != nil {
			return false, err
		}
		fmt.Fprintln(w, "database saved")
		return false, nil
	case "\\flush":
		st, err := db.Checkpoint()
		if err != nil {
			return false, err
		}
		if db.Durable() {
			fmt.Fprintf(w, "checkpointed %d tables (%d segments written, %d unchanged), wal truncated %d bytes in %s\n",
				st.Tables, st.SegmentsWritten, st.SegmentsSkipped, st.WALTruncated, st.Wall.Round(time.Millisecond))
		} else {
			fmt.Fprintln(w, "database saved")
		}
		return false, nil
	case "\\subscribe":
		if len(fields) == 1 {
			if len(state.standings) == 0 {
				fmt.Fprintln(w, "no standing statements (\\subscribe MINE ... to register one)")
				return false, nil
			}
			for _, e := range state.standings {
				fmt.Fprintf(w, "%-3d %s\n", e.id, e.st.Stmt().String())
			}
			return false, nil
		}
		rest := strings.TrimSpace(strings.TrimPrefix(cmd, "\\subscribe"))
		if !tml.IsSubscribeStatement(rest) {
			rest = "SUBSCRIBE " + rest
		}
		stmt, err := tml.Parse(rest)
		if err != nil {
			return false, err
		}
		st, err := tml.NewStanding(session.TML, stmt)
		if err != nil {
			return false, err
		}
		state.nextSub++
		e := &standingEntry{id: state.nextSub, st: st}
		state.standings = append(state.standings, e)
		fmt.Fprintf(w, "subscription %d registered: %s\n", e.id, stmt.String())
		// The registration snapshot, if the table already has data.
		upd, err := st.Step(context.Background())
		if err != nil {
			return false, err
		}
		if upd != nil {
			printSubUpdate(w, e.id, upd)
		}
		return false, nil
	case "\\unsubscribe":
		if len(fields) != 2 {
			return false, fmt.Errorf("usage: \\unsubscribe <n>")
		}
		for i, e := range state.standings {
			if fmt.Sprint(e.id) == fields[1] {
				state.standings = append(state.standings[:i], state.standings[i+1:]...)
				fmt.Fprintf(w, "subscription %s removed\n", fields[1])
				return false, nil
			}
		}
		return false, fmt.Errorf("no subscription %s (\\subscribe lists them)", fields[1])
	case "\\import":
		if len(fields) != 3 {
			return false, fmt.Errorf("usage: \\import <table> <file.csv>")
		}
		if err := importCSV(db, fields[1], fields[2], w); err != nil {
			return false, err
		}
		stepStandings(context.Background(), w, state)
		return false, nil
	case "\\export":
		if len(fields) != 3 {
			return false, fmt.Errorf("usage: \\export <table> <file.csv>")
		}
		return false, exportCSV(db, fields[1], fields[2], w)
	case "\\help", "\\h":
		fmt.Fprint(w, `Statements end with ';'.
SQL:  SELECT ... FROM t [WHERE ...] [GROUP BY ... [HAVING ...]] [ORDER BY ...] [LIMIT n];
      INSERT INTO t VALUES (...); UPDATE t SET col = e [WHERE ...]; DELETE FROM t [WHERE ...];
      CREATE TABLE t (col type, ...); SHOW TABLES; DESCRIBE t; DROP TABLE t;
TML:  MINE RULES FROM t [DURING '<pattern>'] THRESHOLD SUPPORT s CONFIDENCE c [FREQUENCY f];
      MINE PERIODS FROM t THRESHOLD ... [MIN LENGTH n];
      MINE CYCLES FROM t THRESHOLD ... [MAX LENGTH n] [MIN REPS n];
      MINE CALENDARS FROM t THRESHOLD ... [MIN REPS n];
      MINE HISTORY FROM t RULE 'a, b => c' THRESHOLD ...;
      EXPLAIN MINE ...;
Patterns: month in (jun..aug) | weekday in (sat,sun) | every 7 offset 2 |
          between 1998-01-01 and 1998-06-30 | and/or/not combinations
Meta: \tables  \save  \flush  \cache  \trace  \import <table> <file.csv>  \export <table> <file.csv>  \help  \quit
      \subscribe MINE ... registers a standing statement: after each statement that advances the
      table past a granule boundary, its rule deltas print (+ added, - removed, ~ changed).
      \subscribe lists the standing statements; \unsubscribe <n> removes one.
      \trace shows the span tree of the last statement (operators, hold-table build, counting passes).
      \flush checkpoints a durable (-wal) database and truncates its log; elsewhere it saves like \save.
CSV:  transaction tables use "timestamp,item1;item2"; relational tables a header row.
`)
		return false, nil
	default:
		return false, fmt.Errorf("unknown command %s (try \\help)", fields[0])
	}
}

// importCSV loads a CSV file into an existing table of either kind; a
// missing transaction table is created (the common bootstrap case).
func importCSV(db *tdb.DB, table, path string, w io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if t, ok := db.Table(table); ok {
		n, err := tdb.ImportTable(f, t)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d row(s) imported into %s\n", n, table)
		return nil
	}
	t, ok := db.TxTable(table)
	if !ok {
		var err error
		t, err = db.CreateTxTable(table)
		if err != nil {
			return err
		}
	}
	n, err := tdb.ImportBaskets(f, t, db.Dict())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%d transaction(s) imported into %s\n", n, table)
	return nil
}

// exportCSV writes a transaction table as basket CSV.
func exportCSV(db *tdb.DB, table, path string, w io.Writer) error {
	t, ok := db.TxTable(table)
	if !ok {
		return fmt.Errorf("no transaction table named %q (relational export: use SELECT)", table)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tdb.ExportBaskets(f, t, db.Dict()); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "%d transaction(s) exported to %s\n", t.Len(), path)
	return nil
}
