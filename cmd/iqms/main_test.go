package main

import (
	"strings"
	"testing"
	"time"

	"github.com/tarm-project/tarm/internal/clihelp"
	"github.com/tarm-project/tarm/internal/obs"
	"github.com/tarm-project/tarm/internal/tdb"
	"github.com/tarm-project/tarm/internal/tml"
)

func testDB(t *testing.T) *tdb.DB {
	t.Helper()
	db := tdb.NewMemDB()
	baskets, err := db.CreateTxTable("baskets")
	if err != nil {
		t.Fatal(err)
	}
	at := time.Date(2024, 1, 1, 9, 0, 0, 0, time.UTC)
	for d := 0; d < 14; d++ {
		for i := 0; i < 6; i++ {
			baskets.Append(at.AddDate(0, 0, d), db.Dict().InternAll("bread", "milk"))
		}
	}
	return db
}

func TestRunScript(t *testing.T) {
	db := testDB(t)
	session := tml.NewSession(db)
	script := strings.NewReader(`
SELECT item, COUNT(*) AS n
FROM baskets
GROUP BY item;

MINE RULES FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.6;
`)
	var out, errs strings.Builder
	if err := run(session, db, script, &out, &errs, false, execOpts{}); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "bread") || !strings.Contains(text, "{milk}") {
		t.Errorf("script output missing expected content:\n%s", text)
	}
}

func TestRunScriptAbortsOnError(t *testing.T) {
	db := testDB(t)
	session := tml.NewSession(db)
	script := strings.NewReader("SELECT nope FROM baskets;\nSELECT 1 FROM baskets;")
	var out, errs strings.Builder
	if err := run(session, db, script, &out, &errs, false, execOpts{}); err == nil {
		t.Error("script error not propagated")
	}
}

func TestRunInteractiveContinuesOnError(t *testing.T) {
	db := testDB(t)
	session := tml.NewSession(db)
	input := strings.NewReader("SELECT nope FROM baskets;\nSHOW TABLES;\n\\quit\n")
	var out, errs strings.Builder
	if err := run(session, db, input, &out, &errs, true, execOpts{}); err != nil {
		t.Fatal(err)
	}
	// Diagnostics land on the error stream, not stdout.
	if !strings.Contains(errs.String(), "error:") {
		t.Errorf("error not surfaced on stderr:\n%s", errs.String())
	}
	if strings.Contains(out.String(), "error:") {
		t.Errorf("error leaked to stdout:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "baskets") {
		t.Errorf("session did not continue after error:\n%s", out.String())
	}
}

func TestMetaCommands(t *testing.T) {
	db := testDB(t)
	var out strings.Builder

	quit, err := metaCommand(`\tables`, tml.NewSession(db), db, &out, &replState{})
	if err != nil || quit {
		t.Fatalf("\\tables: %v, quit=%v", err, quit)
	}
	if !strings.Contains(out.String(), "baskets") || !strings.Contains(out.String(), "transactions") {
		t.Errorf("\\tables output: %q", out.String())
	}

	quit, err = metaCommand(`\q`, tml.NewSession(db), db, &out, &replState{})
	if err != nil || !quit {
		t.Errorf("\\q: %v, quit=%v", err, quit)
	}

	out.Reset()
	quit, err = metaCommand(`\help`, tml.NewSession(db), db, &out, &replState{})
	if err != nil || quit || !strings.Contains(out.String(), "MINE RULES") {
		t.Errorf("\\help broken: %v %q", err, out.String())
	}

	if _, err := metaCommand(`\bogus`, tml.NewSession(db), db, &out, &replState{}); err == nil {
		t.Error("unknown meta command accepted")
	}

	// \save on a memory DB must fail cleanly.
	if _, err := metaCommand(`\save`, tml.NewSession(db), db, &out, &replState{}); err == nil {
		t.Error("\\save on memory DB succeeded")
	}
}

func TestImportExportCSV(t *testing.T) {
	db := testDB(t)
	dir := t.TempDir()
	var out strings.Builder

	// Export the fixture, then import into a fresh table.
	exportPath := dir + "/out.csv"
	if _, err := metaCommand(`\export baskets `+exportPath, tml.NewSession(db), db, &out, &replState{}); err != nil {
		t.Fatal(err)
	}
	if _, err := metaCommand(`\import copied `+exportPath, tml.NewSession(db), db, &out, &replState{}); err != nil {
		t.Fatal(err)
	}
	copied, ok := db.TxTable("copied")
	if !ok || copied.Len() != 84 {
		t.Fatalf("copied table missing or wrong size: %v", copied)
	}
	if !strings.Contains(out.String(), "84 transaction(s) imported") {
		t.Errorf("output: %q", out.String())
	}

	// Errors: bad arity, missing file, export of unknown table.
	if _, err := metaCommand(`\import onlytable`, tml.NewSession(db), db, &out, &replState{}); err == nil {
		t.Error("bad arity accepted")
	}
	if _, err := metaCommand(`\import t `+dir+`/nope.csv`, tml.NewSession(db), db, &out, &replState{}); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := metaCommand(`\export nosuch `+dir+`/x.csv`, tml.NewSession(db), db, &out, &replState{}); err == nil {
		t.Error("export of unknown table accepted")
	}
}

// TestServeMetrics boots the observability endpoint on an ephemeral
// port (through the shared clihelp path main uses), runs a MINE
// statement through the session and checks the statement counter.
func TestServeMetrics(t *testing.T) {
	db := testDB(t)
	session := tml.NewSession(db)
	session.TML.Tracer = obs.NewRegistryTracer(obs.Default, "")
	if err := clihelp.ServeMetrics("iqms", "127.0.0.1:0", obs.Default); err != nil {
		t.Fatal(err)
	}
	before := obs.Default.Counter("tarm_statements_total").Value()
	var out, errs strings.Builder
	input := strings.NewReader("MINE RULES FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.5;\n")
	if err := run(session, db, input, &out, &errs, false, execOpts{}); err != nil {
		t.Fatal(err)
	}
	if got := obs.Default.Counter("tarm_statements_total").Value(); got != before+1 {
		t.Errorf("statements counter = %d, want %d", got, before+1)
	}
	if err := clihelp.ServeMetrics("iqms", "256.0.0.1:bad", obs.Default); err == nil {
		t.Error("bad metrics address accepted")
	}
}
