// Command tarmd is the concurrent TML mining server: it opens a
// database directory and serves MINE / EXPLAIN MINE statements over
// HTTP to many sessions at once, all sharing one hold-table cache.
//
// Usage:
//
//	tarmd -db ./data -addr :8440
//	tarmd -db ./data -addr :8440 -pool 8 -queue 16 -timeout 30s -cache 256
//	tarmd -db ./data -slow-query 2s -journal 256 -journal-log queries.jsonl
//	curl -d 'MINE CYCLES FROM baskets THRESHOLD SUPPORT 0.1 CONFIDENCE 0.6;' \
//	     'http://localhost:8440/v1/statements?format=text'
//
// Continuous mining: POST a SUBSCRIBE MINE statement to
// /v1/subscriptions to register a standing statement that re-runs when
// the append stream closes a granule, emitting rule deltas on
// GET /v1/subscriptions/{id}/events (long-poll or SSE). -subs bounds
// the standing statements, -sub-queue each subscriber's event ring.
//
// The same port serves the observability endpoints (/metrics,
// /debug/vars, /debug/pprof) and the query introspection endpoints
// (/v1/queries, /v1/queries/{id}, /v1/cache): every statement is
// traced under its X-Request-ID and journalled. SIGINT/SIGTERM drains
// gracefully: new statements get 503, in-flight statements finish (up
// to -drain), then the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/tarm-project/tarm/internal/clihelp"
	"github.com/tarm-project/tarm/internal/obs"
	"github.com/tarm-project/tarm/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tarmd:", err)
		os.Exit(1)
	}
}

func run() error {
	var mf clihelp.MiningFlags
	fs := flag.CommandLine
	dbDir := fs.String("db", "", "database directory")
	addr := fs.String("addr", ":8440", "listen address")
	pool := fs.Int("pool", 4, "statements executing concurrently")
	queue := fs.Int("queue", 0, "statements allowed to wait for a slot (0 = 2*pool)")
	drain := fs.Duration("drain", 30*time.Second, "how long to wait for in-flight statements on shutdown")
	subs := fs.Int("subs", 16, "standing SUBSCRIBE MINE statements allowed at once")
	subQueue := fs.Int("sub-queue", 64, "per-subscription event ring capacity")
	mf.RegisterMining(fs)
	mf.RegisterTimeout(fs)
	mf.RegisterCache(fs)
	mf.RegisterJournal(fs)
	mf.RegisterDurability(fs)
	flag.Parse()

	if *dbDir == "" {
		return errors.New("-db is required")
	}
	backend, err := mf.Backend()
	if err != nil {
		return err
	}
	sink, err := mf.JournalSink()
	if err != nil {
		return err
	}
	if sink != nil {
		defer sink.Close()
	}
	// One registry for server and storage engine, so wal_*/checkpoint_*
	// metrics land next to the request metrics on /metrics.
	reg := obs.NewRegistry()
	db, err := mf.OpenDB(*dbDir, reg)
	if err != nil {
		return err
	}
	if db.Durable() {
		rec := db.Recovery()
		fmt.Fprintf(os.Stderr, "tarmd: durable open (fsync %s): replayed %d wal records (%d tx, %d skipped, %d torn bytes) in %s\n",
			db.FsyncPolicy(), rec.Records, rec.AppendedTx, rec.SkippedTx, rec.TornBytes, rec.Wall.Round(time.Millisecond))
	}

	cfg := server.Config{
		Pool:        *pool,
		Queue:       *queue,
		Timeout:     mf.Timeout,
		Backend:     backend,
		Workers:     mf.Workers,
		CacheBytes:  mf.CacheBytes(),
		JournalSize: mf.JournalSize,
		SlowQuery:   mf.SlowQuery,
		Registry:    reg,
		MaxSubs:     *subs,
		SubQueue:    *subQueue,
	}
	if sink != nil {
		cfg.JournalSink = sink
	}
	srv := server.New(db, cfg)

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "tarmd: serving %s on %s (pool %d, metrics on /metrics)\n",
			*dbDir, *addr, *pool)
		errc <- httpSrv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "tarmd: %v, draining (up to %s)\n", s, *drain)
	}

	// Statement-level drain first (stop admitting, finish what's
	// running), then the connection-level shutdown.
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "tarmd:", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	// The drain stopped admission and the pool is empty: checkpoint so
	// appends acknowledged this run restart from segments, not replay.
	// (Durable databases truncate the WAL here; a plain -db directory
	// gets a whole-file Flush, closing the old exit-discards-appends
	// hole either way.)
	if err := db.Close(); err != nil {
		return fmt.Errorf("close: %w", err)
	}
	if !db.Durable() {
		if err := db.Flush(); err != nil {
			return fmt.Errorf("flush: %w", err)
		}
	}
	fmt.Fprintln(os.Stderr, "tarmd: drained, bye")
	return nil
}
