package tarm

// One benchmark per experiment of EXPERIMENTS.md (E1–E10), so
// `go test -bench=.` regenerates a timing point for every table and
// figure, plus micro-benchmarks of the counting substrates. The full
// parameter sweeps (whole tables, recovery scores) come from
// `go run ./cmd/tarmine -experiment all`, which shares the harness in
// internal/bench.

import (
	"fmt"
	"testing"
	"time"

	"github.com/tarm-project/tarm/internal/apriori"
	"github.com/tarm-project/tarm/internal/bench"
	"github.com/tarm-project/tarm/internal/core"
	"github.com/tarm-project/tarm/internal/gen"
	"github.com/tarm-project/tarm/internal/itemset"
	"github.com/tarm-project/tarm/internal/tdb"
	"github.com/tarm-project/tarm/internal/timegran"
	"github.com/tarm-project/tarm/internal/tml"
)

// benchDataset caches the standard dataset across benchmarks.
var benchDataset *tdb.TxTable

func dataset(b *testing.B) *tdb.TxTable {
	b.Helper()
	if benchDataset == nil {
		tbl, _, err := bench.StandardDataset(bench.StandardConfig{TxPerDay: 50, Seed: 1998})
		if err != nil {
			b.Fatal(err)
		}
		benchDataset = tbl
	}
	return benchDataset
}

// BenchmarkE1MissedRules times each miner of the E1 comparison on the
// standard dataset (364 days × 50 tx/day).
func BenchmarkE1MissedRules(b *testing.B) {
	tbl := dataset(b)
	cfg := bench.Cfg()
	b.Run("traditional", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.MineTraditional(tbl, cfg.MinSupport, cfg.MinConfidence, cfg.MaxK); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("taskI-periods", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.MineValidPeriods(tbl, cfg, core.PeriodConfig{MinLen: 7}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("taskII-cycles", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.MineCycles(tbl, cfg, core.CycleConfig{MaxLen: 10, MinReps: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("taskII-calendars", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.MineCalendarPeriodicities(tbl, cfg, core.CycleConfig{MinReps: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("taskIII-during", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.MineDuringExpr(tbl, cfg, "month in (jun..aug)"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE2SupportSweep times Task I across the minimum-support axis.
func BenchmarkE2SupportSweep(b *testing.B) {
	tbl := dataset(b)
	for _, s := range []float64{0.25, 0.15, 0.10, 0.05} {
		b.Run(fmt.Sprintf("minsup=%.2f", s), func(b *testing.B) {
			cfg := bench.Cfg()
			cfg.MinSupport = s
			for i := 0; i < b.N; i++ {
				if _, err := core.MineValidPeriods(tbl, cfg, core.PeriodConfig{MinLen: 7}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE3ScaleUp times Task I as the database grows (the linear
// scale-up figure): longer history at fixed daily volume.
func BenchmarkE3ScaleUp(b *testing.B) {
	for _, days := range []int{91, 182, 364} {
		tbl, _, err := bench.StandardDataset(bench.StandardConfig{TxPerDay: 100, Days: days, Seed: 1998})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("tx=%d", tbl.Len()), func(b *testing.B) {
			cfg := bench.Cfg()
			for i := 0; i < b.N; i++ {
				if _, err := core.MineValidPeriods(tbl, cfg, core.PeriodConfig{MinLen: 7}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE4TransactionSize times Task I as the mean basket grows.
func BenchmarkE4TransactionSize(b *testing.B) {
	for _, sz := range []float64{5, 10, 15} {
		tbl, _, err := bench.StandardDataset(bench.StandardConfig{TxPerDay: 50, AvgTxLen: sz, Seed: 1998})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("T=%.0f", sz), func(b *testing.B) {
			cfg := bench.Cfg()
			for i := 0; i < b.N; i++ {
				if _, err := core.MineValidPeriods(tbl, cfg, core.PeriodConfig{MinLen: 7}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE5ValidPeriodRecovery times the full Task I recovery
// experiment (dataset generation excluded would hide nothing: the
// mining dominates, but we still keep generation out of the loop).
func BenchmarkE5ValidPeriodRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.E5ValidPeriodRecovery(50, 1998); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6CycleRecovery times Task II across the MaxLen axis.
func BenchmarkE6CycleRecovery(b *testing.B) {
	tbl := dataset(b)
	cfg := bench.Cfg()
	cfg.MinFreq = 0.9
	for _, maxLen := range []int{7, 14, 31} {
		b.Run(fmt.Sprintf("maxlen=%d", maxLen), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.MineCycles(tbl, cfg, core.CycleConfig{MaxLen: maxLen, MinReps: 4}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE7CycleAblation is the sequential vs interleaved pair: same
// results, different counting work.
func BenchmarkE7CycleAblation(b *testing.B) {
	tbl := dataset(b)
	cfg := bench.Cfg()
	cfg.MinFreq = 1
	ccfg := core.CycleConfig{MaxLen: 14, MinReps: 4}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.MineItemsetCyclesSequential(tbl, cfg, ccfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("interleaved", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.MineItemsetCyclesInterleaved(tbl, cfg, ccfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE8CalendarSelectivity times Task III across feature widths.
func BenchmarkE8CalendarSelectivity(b *testing.B) {
	tbl := dataset(b)
	cfg := bench.Cfg()
	for _, expr := range []string{"always", "month in (1..6)", "weekday in (sat, sun)", "month in (1)"} {
		p, err := timegran.ParsePattern(expr)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(expr, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.MineDuring(tbl, cfg, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE9TML times each TML statement form end to end (parse, plan,
// mine, render) through the IQMS session.
func BenchmarkE9TML(b *testing.B) {
	src := dataset(b)
	db := tdb.NewMemDB()
	dst, err := db.CreateTxTable("baskets")
	if err != nil {
		b.Fatal(err)
	}
	src.Each(func(tx tdb.Tx) bool {
		dst.Append(tx.At, tx.Items)
		return true
	})
	session := tml.NewSession(db)
	stmts := map[string]string{
		"sql-groupby":    `SELECT item, COUNT(*) AS n FROM baskets GROUP BY item ORDER BY n DESC LIMIT 5`,
		"mine-rules":     `MINE RULES FROM baskets THRESHOLD SUPPORT 0.15 CONFIDENCE 0.6 MAX SIZE 3`,
		"mine-during":    `MINE RULES FROM baskets DURING 'month in (jun..aug)' THRESHOLD SUPPORT 0.15 CONFIDENCE 0.6 FREQUENCY 0.8 MAX SIZE 3`,
		"mine-periods":   `MINE PERIODS FROM baskets THRESHOLD SUPPORT 0.15 CONFIDENCE 0.6 FREQUENCY 0.8 MIN LENGTH 7 MAX SIZE 3`,
		"mine-cycles":    `MINE CYCLES FROM baskets THRESHOLD SUPPORT 0.15 CONFIDENCE 0.6 FREQUENCY 0.9 MAX LENGTH 10 MIN REPS 4 MAX SIZE 3`,
		"mine-calendars": `MINE CALENDARS FROM baskets THRESHOLD SUPPORT 0.15 CONFIDENCE 0.6 FREQUENCY 0.8 MIN REPS 4 MAX SIZE 3`,
	}
	for name, stmt := range stmts {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := session.Exec(stmt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE10FrequencySweep times Task II across the frequency
// threshold axis.
func BenchmarkE10FrequencySweep(b *testing.B) {
	tbl := dataset(b)
	for _, mf := range []float64{1.0, 0.9, 0.7} {
		b.Run(fmt.Sprintf("minfreq=%.1f", mf), func(b *testing.B) {
			cfg := bench.Cfg()
			cfg.MinFreq = mf
			for i := 0; i < b.N; i++ {
				if _, err := core.MineCycles(tbl, cfg, core.CycleConfig{MaxLen: 10, MinReps: 4}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// Substrate micro-benchmarks.

// BenchmarkHashTreeVsNaive compares the hash-tree counter against the
// per-candidate subset test it replaces.
func BenchmarkHashTreeVsNaive(b *testing.B) {
	tbl := dataset(b)
	src := tbl.All()
	// Build a realistic 2-candidate set from the frequent singles.
	f, err := apriori.Mine(src, apriori.Config{MinSupport: 0.01, MaxK: 1})
	if err != nil {
		b.Fatal(err)
	}
	cands := apriori.GenerateCandidates(f.ByK[1])
	if len(cands) == 0 {
		b.Fatal("no candidates")
	}
	b.Run(fmt.Sprintf("hashtree-%dcands", len(cands)), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := apriori.CountSets(src, cands, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(fmt.Sprintf("naive-%dcands", len(cands)), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			apriori.CountSetsNaive(src, cands)
		}
	})
}

// BenchmarkCountingBackend is the backend ablation on the paper's
// T10.I4 workload class: 10k Quest transactions mined to k=3 at 1%
// support across the hash-tree, vertical-bitmap and roaring counters.
func BenchmarkCountingBackend(b *testing.B) {
	q, err := gen.NewQuest(gen.QuestConfig{}, 1998)
	if err != nil {
		b.Fatal(err)
	}
	src := apriori.Transactions(q.Transactions(10000))
	for _, bk := range []apriori.Backend{apriori.BackendHashTree, apriori.BackendBitmap, apriori.BackendRoaring} {
		b.Run(bk.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := apriori.Mine(src, apriori.Config{
					MinSupport: 0.01, MaxK: 3, Backend: bk,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// countingCoreDataset builds a synthetic table of n transactions over
// nItems items, each item present in ~density of the transactions,
// plus the level-2 candidates over all items — the raw workload of the
// counting core, decoupled from the Apriori driver.
func countingCoreDataset(n, nItems int, density float64) (apriori.Transactions, []itemset.Set) {
	// Deterministic LCG so the benchmark needs no seeding ceremony.
	state := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 11
	}
	threshold := uint64(density * (1 << 53))
	txs := make(apriori.Transactions, n)
	for i := range txs {
		var items []itemset.Item
		for x := 0; x < nItems; x++ {
			if next()&((1<<53)-1) < threshold {
				items = append(items, itemset.Item(x))
			}
		}
		txs[i] = itemset.New(items...)
	}
	var cands []itemset.Set
	for a := 0; a < nItems; a++ {
		for c := a + 1; c < nItems; c++ {
			cands = append(cands, itemset.New(itemset.Item(a), itemset.Item(c)))
		}
	}
	return txs, cands
}

// BenchmarkCountingCore pits the uncompressed bitmap against the
// roaring-container index on the isolated counting kernel (index built
// once, candidates counted per iteration), at a density where the flat
// bitmap's density-blind AND over the full universe is mostly zeros
// (sparse, 1/512) and at one where it is well used (dense, 1/8).
// roaring-scalar counts through EachIntersection one candidate at a
// time; roaring uses the batched container-major CountSets.
func BenchmarkCountingCore(b *testing.B) {
	shapes := []struct {
		name    string
		n       int
		items   int
		density float64
	}{
		{"sparse-1/512", 1 << 18, 48, 1.0 / 512},
		{"dense-1/8", 1 << 17, 48, 1.0 / 8},
	}
	for _, sh := range shapes {
		txs, cands := countingCoreDataset(sh.n, sh.items, sh.density)
		bix := apriori.NewBitmapIndex(txs, nil)
		rix := apriori.NewRoaringIndex(txs, nil)
		b.Run(sh.name+"/bitmap", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = bix.CountSets(cands)
			}
		})
		b.Run(sh.name+"/roaring", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = rix.CountSets(cands)
			}
		})
		b.Run(sh.name+"/roaring-scalar", func(b *testing.B) {
			b.ReportAllocs()
			counts := make([]int, len(cands))
			for i := 0; i < b.N; i++ {
				rix.EachIntersection(cands, func(j int, acc *apriori.RoaringAcc) {
					counts[j] = acc.Card()
				})
			}
		})
		b.Run(sh.name+"/roaring-parallel4", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = rix.CountSetsParallel(cands, 4)
			}
		})
	}
}

// BenchmarkHoldTableBuild times the shared per-granule counting pass by
// itself.
func BenchmarkHoldTableBuild(b *testing.B) {
	tbl := dataset(b)
	cfg := bench.Cfg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildHoldTable(tbl, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHoldTableWorkers is the parallel-counting ablation: the
// same build with 1, 2, 4 and 8 workers.
func BenchmarkHoldTableWorkers(b *testing.B) {
	tbl := dataset(b)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			cfg := bench.Cfg()
			cfg.Workers = w
			for i := 0; i < b.N; i++ {
				if _, err := core.BuildHoldTable(tbl, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExtendVsRebuild is the incremental-maintenance ablation:
// one new day arrives on a year of history — top up the hold table vs
// recount everything.
func BenchmarkExtendVsRebuild(b *testing.B) {
	tbl, _, err := bench.StandardDataset(bench.StandardConfig{TxPerDay: 50, Seed: 1998})
	if err != nil {
		b.Fatal(err)
	}
	cfg := bench.Cfg()
	h, err := core.BuildHoldTable(tbl, cfg)
	if err != nil {
		b.Fatal(err)
	}
	// Append one day past the span.
	span, _ := tbl.Span(timegran.Day)
	day := timegran.Start(span.Hi+1, timegran.Day)
	for i := 0; i < 50; i++ {
		tbl.Append(day.Add(time.Duration(i)*time.Minute), itemset.New(itemset.Item(i%30), itemset.Item(30+i%30)))
	}
	b.Run("extend", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := h.Extend(tbl); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.BuildHoldTable(tbl, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkHashTreeParams is the hash-tree tuning ablation DESIGN.md
// calls out: fanout × leaf-size combinations on realistic candidates.
func BenchmarkHashTreeParams(b *testing.B) {
	tbl := dataset(b)
	src := tbl.All()
	f, err := apriori.Mine(src, apriori.Config{MinSupport: 0.01, MaxK: 1})
	if err != nil {
		b.Fatal(err)
	}
	cands := apriori.GenerateCandidates(f.ByK[1])
	if len(cands) == 0 {
		b.Fatal("no candidates")
	}
	for _, fanout := range []int{4, 8, 16} {
		for _, leaf := range []int{4, 16, 64} {
			b.Run(fmt.Sprintf("fanout=%d/leaf=%d", fanout, leaf), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					tree, err := apriori.NewHashTree(cands, 2, fanout, leaf)
					if err != nil {
						b.Fatal(err)
					}
					src.ForEach(tree.Add)
				}
			})
		}
	}
}

// BenchmarkPatternParse times the calendar-algebra parser.
func BenchmarkPatternParse(b *testing.B) {
	const expr = "month in (jun..aug) and (weekday in (sat, sun) or every 7 offset 2) and not (between 1998-01-01 and 1998-02-01)"
	for i := 0; i < b.N; i++ {
		if _, err := timegran.ParsePattern(expr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkItemsetOps times the kernel set operations.
func BenchmarkItemsetOps(b *testing.B) {
	a := itemset.New(1, 5, 9, 13, 22, 40, 41, 57)
	c := itemset.New(5, 9, 22, 57, 58)
	tx := itemset.New(1, 2, 5, 7, 9, 13, 20, 22, 33, 40, 41, 50, 57, 58, 60)
	b.Run("ContainsAll", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tx.ContainsAll(a)
		}
	})
	b.Run("Union", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = a.Union(c)
		}
	})
	b.Run("Key", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = a.Key()
		}
	})
}
