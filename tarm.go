// Package tarm is the public API of the temporal association rule
// mining system, a reproduction of Chen & Petrounias, "Discovering
// Temporal Association Rules: Algorithms, Language and System"
// (ICDE 2000).
//
// The facade re-exports the stable surface of the internal packages:
//
//   - the temporal database (DB, TxTable) and its SQL engine,
//   - the calendar algebra (granularities, patterns, ParsePattern),
//   - the three temporal mining tasks (MineValidPeriods, MineCycles and
//     MineCalendarPeriodicities, MineDuring),
//   - the traditional Apriori baseline (MineTraditional),
//   - the TML language and the IQMS session (NewSession), and
//   - the synthetic workload generator used by the experiments.
//
// A minimal end-to-end use:
//
//	db := tarm.NewMemDB()
//	baskets, _ := db.CreateTxTable("baskets")
//	baskets.Append(time.Now(), db.Dict().InternAll("bread", "milk"))
//	...
//	rules, _ := tarm.MineValidPeriods(baskets, tarm.Config{
//	    Granularity: tarm.Day, MinSupport: 0.05,
//	    MinConfidence: 0.6, MinFreq: 0.9,
//	}, tarm.PeriodConfig{})
package tarm

import (
	"context"
	"net/http"

	"github.com/tarm-project/tarm/internal/apriori"
	"github.com/tarm-project/tarm/internal/core"
	"github.com/tarm-project/tarm/internal/gen"
	"github.com/tarm-project/tarm/internal/itemset"
	"github.com/tarm-project/tarm/internal/minisql"
	"github.com/tarm-project/tarm/internal/obs"
	"github.com/tarm-project/tarm/internal/prune"
	"github.com/tarm-project/tarm/internal/server"
	"github.com/tarm-project/tarm/internal/tdb"
	"github.com/tarm-project/tarm/internal/timegran"
	"github.com/tarm-project/tarm/internal/tml"
)

// Itemset kernel.
type (
	// Item identifies a single item.
	Item = itemset.Item
	// Itemset is a canonical (sorted, duplicate-free) set of items.
	Itemset = itemset.Set
	// Dict maps item names to identifiers and back.
	Dict = itemset.Dict
)

// NewItemset builds a canonical itemset from items in any order.
func NewItemset(items ...Item) Itemset { return itemset.New(items...) }

// NewDict returns an empty item dictionary.
func NewDict() *Dict { return itemset.NewDict() }

// Rules.
type (
	// Rule is an association rule X ⇒ Y with support/confidence/lift.
	Rule = apriori.Rule
	// TemporalRule pairs a rule with a discovered temporal feature.
	TemporalRule = core.TemporalRule
	// PeriodRule is a Task I result (rule + maximal valid period).
	PeriodRule = core.PeriodRule
	// CyclicRule is a Task II result (rule + cycle).
	CyclicRule = core.CyclicRule
	// CalendarRule is a Task II calendar-periodicity result.
	CalendarRule = core.CalendarRule
)

// Time model and calendar algebra.
type (
	// Granularity is a calendar unit (Second … Year).
	Granularity = timegran.Granularity
	// Granule is one unit of a granularity since the Unix epoch.
	Granule = timegran.Granule
	// Interval is an inclusive granule range.
	Interval = timegran.Interval
	// IntervalSet is a normalised set of granules.
	IntervalSet = timegran.IntervalSet
	// Pattern is a temporal feature: a predicate over granules.
	Pattern = timegran.Pattern
	// Cycle is the periodic pattern "every Length granules at Offset".
	Cycle = timegran.Cycle
	// Calendar is a calendar-class pattern such as "weekday in (6..7)".
	Calendar = timegran.Calendar
	// Window is an absolute time-range pattern.
	Window = timegran.Window
)

// Granularities.
const (
	Second  = timegran.Second
	Minute  = timegran.Minute
	Hour    = timegran.Hour
	Day     = timegran.Day
	Week    = timegran.Week
	Month   = timegran.Month
	Quarter = timegran.Quarter
	Year    = timegran.Year
)

// ParsePattern parses the textual calendar-algebra syntax, e.g.
// "month in (jun..aug) and weekday in (sat, sun)".
func ParsePattern(expr string) (Pattern, error) { return timegran.ParsePattern(expr) }

// ParseGranularity parses a granularity name such as "day" or "weeks".
func ParseGranularity(s string) (Granularity, error) { return timegran.ParseGranularity(s) }

// Database.
type (
	// DB is a collection of relational and transaction tables sharing
	// one item dictionary.
	DB = tdb.DB
	// TxTable is a time-partitioned transaction table.
	TxTable = tdb.TxTable
	// Tx is one timestamped transaction.
	Tx = tdb.Tx
)

// Open loads or initialises a persistent database directory.
func Open(dir string) (*DB, error) { return tdb.Open(dir) }

// Segmented persistence: time-partitioned storage for append-mostly
// transaction tables.
type (
	// SegmentConfig fixes the segment grid (granularity × width).
	SegmentConfig = tdb.SegmentConfig
	// SegmentSaveStats reports written vs skipped segments.
	SegmentSaveStats = tdb.SegmentSaveStats
)

// SaveTxTableSegmented writes a transaction table as time segments,
// rewriting only segments whose contents changed since the last save.
func SaveTxTableSegmented(t *TxTable, dir string, cfg SegmentConfig) (SegmentSaveStats, error) {
	return tdb.SaveTxTableSegmented(t, dir, cfg)
}

// LoadTxTableSegmented reads a segment directory back.
func LoadTxTableSegmented(dir string) (*TxTable, SegmentConfig, error) {
	return tdb.LoadTxTableSegmented(dir)
}

// NewMemDB returns an in-memory database.
func NewMemDB() *DB { return tdb.NewMemDB() }

// CountingBackend selects the support-counting strategy of the miners:
// BackendAuto picks per run with a cost model over the data shape,
// BackendBitmap is the vertical TID-bitmap backend, BackendRoaring its
// compressed-container variant, BackendHashTree the classic Apriori
// hash tree and BackendNaive the reference subset test. Set it on
// Config.Backend (temporal tasks) or choose it via the -backend flag of
// the CLI front ends.
type CountingBackend = apriori.Backend

// Counting backends.
const (
	BackendAuto     = apriori.BackendAuto
	BackendNaive    = apriori.BackendNaive
	BackendHashTree = apriori.BackendHashTree
	BackendBitmap   = apriori.BackendBitmap
	BackendRoaring  = apriori.BackendRoaring
)

// ParseBackend parses a backend name ("auto", "naive", "hashtree",
// "bitmap", "roaring") as used by the -backend CLI flag.
func ParseBackend(s string) (CountingBackend, error) { return apriori.ParseBackend(s) }

// Mining configuration.
type (
	// Config carries the shared temporal mining thresholds.
	Config = core.Config
	// PeriodConfig tunes Task I.
	PeriodConfig = core.PeriodConfig
	// CycleConfig tunes Task II.
	CycleConfig = core.CycleConfig
	// HoldTable is the shared per-granule counting substrate; build it
	// once with BuildHoldTable to run several tasks over one pass, and
	// refresh it incrementally with its Extend method as new
	// transactions arrive.
	HoldTable = core.HoldTable
	// HoldCache is a memory-bounded LRU cache of HoldTables that serves
	// statements at equal-or-higher support from memory by
	// re-thresholding the stored count vectors; see NewHoldCache.
	HoldCache = core.HoldCache
	// CacheStats is a HoldCache counter snapshot.
	CacheStats = core.CacheStats
)

// DefaultCacheBytes is the hold-table cache budget front ends use when
// none is configured.
const DefaultCacheBytes = core.DefaultCacheBytes

// NewHoldCache returns a hold-table cache bounded to roughly maxBytes
// (maxBytes ≤ 0 returns nil, which disables caching: a nil *HoldCache
// builds directly on every Get).
func NewHoldCache(maxBytes int64) *HoldCache { return core.NewHoldCache(maxBytes) }

// BuildHoldTable runs the shared counting pass; the *FromTable mining
// variants in internal/core run any task over it without rescanning.
func BuildHoldTable(tbl *TxTable, cfg Config) (*HoldTable, error) {
	return core.BuildHoldTable(tbl, cfg)
}

// BuildHoldTableContext is BuildHoldTable under a context: the build
// observes cancellation at granule-block and pass boundaries, so a
// cancelled caller gets ctx.Err() promptly without per-transaction
// overhead. Every miner below has the same Context form.
func BuildHoldTableContext(ctx context.Context, tbl *TxTable, cfg Config) (*HoldTable, error) {
	return core.BuildHoldTableContext(ctx, tbl, cfg)
}

// MineValidPeriodsFromTable is Task I over a prebuilt HoldTable.
func MineValidPeriodsFromTable(h *HoldTable, pcfg PeriodConfig) ([]PeriodRule, error) {
	return core.MineValidPeriodsFromTable(h, pcfg)
}

// MineValidPeriodsFromTableContext is the cancellable form.
func MineValidPeriodsFromTableContext(ctx context.Context, h *HoldTable, pcfg PeriodConfig) ([]PeriodRule, error) {
	return core.MineValidPeriodsFromTableContext(ctx, h, pcfg)
}

// MineCyclesFromTable is Task II (cycles) over a prebuilt HoldTable.
func MineCyclesFromTable(h *HoldTable, ccfg CycleConfig) ([]CyclicRule, error) {
	return core.MineCyclesFromTable(h, ccfg)
}

// MineCyclesFromTableContext is the cancellable form.
func MineCyclesFromTableContext(ctx context.Context, h *HoldTable, ccfg CycleConfig) ([]CyclicRule, error) {
	return core.MineCyclesFromTableContext(ctx, h, ccfg)
}

// MineDuringFromTable is Task III over a prebuilt HoldTable.
func MineDuringFromTable(h *HoldTable, feature Pattern) ([]TemporalRule, error) {
	return core.MineDuringFromTable(h, feature)
}

// MineDuringFromTableContext is the cancellable form.
func MineDuringFromTableContext(ctx context.Context, h *HoldTable, feature Pattern) ([]TemporalRule, error) {
	return core.MineDuringFromTableContext(ctx, h, feature)
}

// MineValidPeriods runs Task I: rules with their maximal valid periods.
func MineValidPeriods(tbl *TxTable, cfg Config, pcfg PeriodConfig) ([]PeriodRule, error) {
	return core.MineValidPeriods(tbl, cfg, pcfg)
}

// MineValidPeriodsContext is the cancellable form.
func MineValidPeriodsContext(ctx context.Context, tbl *TxTable, cfg Config, pcfg PeriodConfig) ([]PeriodRule, error) {
	return core.MineValidPeriodsContext(ctx, tbl, cfg, pcfg)
}

// MineCycles runs the arithmetic half of Task II: rules with the cycles
// they obey.
func MineCycles(tbl *TxTable, cfg Config, ccfg CycleConfig) ([]CyclicRule, error) {
	return core.MineCycles(tbl, cfg, ccfg)
}

// MineCyclesContext is the cancellable form.
func MineCyclesContext(ctx context.Context, tbl *TxTable, cfg Config, ccfg CycleConfig) ([]CyclicRule, error) {
	return core.MineCyclesContext(ctx, tbl, cfg, ccfg)
}

// MineCalendarPeriodicities runs the calendar half of Task II: rules
// with calendar-class features such as "weekday in (6..7)".
func MineCalendarPeriodicities(tbl *TxTable, cfg Config, ccfg CycleConfig) ([]CalendarRule, error) {
	return core.MineCalendarPeriodicities(tbl, cfg, ccfg)
}

// MineCalendarPeriodicitiesContext is the cancellable form.
func MineCalendarPeriodicitiesContext(ctx context.Context, tbl *TxTable, cfg Config, ccfg CycleConfig) ([]CalendarRule, error) {
	return core.MineCalendarPeriodicitiesContext(ctx, tbl, cfg, ccfg)
}

// MineDuring runs Task III: rules that hold during the given temporal
// feature.
func MineDuring(tbl *TxTable, cfg Config, feature Pattern) ([]TemporalRule, error) {
	return core.MineDuring(tbl, cfg, feature)
}

// MineDuringContext is the cancellable form.
func MineDuringContext(ctx context.Context, tbl *TxTable, cfg Config, feature Pattern) ([]TemporalRule, error) {
	return core.MineDuringContext(ctx, tbl, cfg, feature)
}

// MineDuringExpr is MineDuring with a textual feature expression.
func MineDuringExpr(tbl *TxTable, cfg Config, expr string) ([]TemporalRule, error) {
	return core.MineDuringExpr(tbl, cfg, expr)
}

// MineTraditional is the time-agnostic Apriori baseline over the whole
// table.
func MineTraditional(tbl *TxTable, minSupport, minConfidence float64, maxK int) ([]Rule, error) {
	return core.MineTraditional(tbl, minSupport, minConfidence, maxK)
}

// MineTraditionalContext is the cancellable form; it passes the default
// backend, worker and tracer settings.
func MineTraditionalContext(ctx context.Context, tbl *TxTable, minSupport, minConfidence float64, maxK int) ([]Rule, error) {
	return core.MineTraditionalContext(ctx, tbl, minSupport, minConfidence, maxK, BackendAuto, 0, nil)
}

// Rule post-processing (result analysis).
type (
	// PruneOptions selects interestingness filters for mined rules.
	PruneOptions = prune.Options
	// PruneStats reports how many rules each filter dropped.
	PruneStats = prune.Stats
)

// PruneRules filters a mined rule set by lift, improvement over
// simpler rules, and statistical significance.
func PruneRules(rules []Rule, opt PruneOptions) ([]Rule, PruneStats, error) {
	return prune.Filter(rules, opt)
}

// SortRulesByLift orders rules by descending lift for presentation.
var SortRulesByLift = prune.SortByLift

// GranuleStat is one granule of a rule's support history.
type GranuleStat = core.GranuleStat

// RuleHistory returns the per-granule support/confidence series of one
// rule — the result-analysis companion to the discovery tasks.
func RuleHistory(tbl *TxTable, cfg Config, ante, cons Itemset) ([]GranuleStat, error) {
	return core.RuleHistory(tbl, cfg, ante, cons)
}

// RuleHistoryContext is the cancellable form.
func RuleHistoryContext(ctx context.Context, tbl *TxTable, cfg Config, ante, cons Itemset) ([]GranuleStat, error) {
	return core.RuleHistoryContext(ctx, tbl, cfg, ante, cons)
}

// IQMS: the integrated query-and-mining session.
type (
	// Session routes SQL statements to the query engine and MINE
	// statements to the TML executor over one shared database.
	Session = tml.Session
	// Result is a tabular statement result.
	Result = minisql.Result
)

// NewSession builds an IQMS session over db.
func NewSession(db *DB) *Session { return tml.NewSession(db) }

// FormatResult renders a result as an aligned text table.
var FormatResult = minisql.Format

// Observability: pass-level tracing and process metrics. Set a Tracer
// on Config.Tracer (temporal tasks) or Session.TML.Tracer (TML); a nil
// tracer costs nothing.
type (
	// Tracer receives span-style events from mining runs.
	Tracer = obs.Tracer
	// PassStats describes one completed counting pass.
	PassStats = obs.PassStats
	// MineStats is the structured telemetry of a run, as collected by a
	// CollectTracer and dumped by `tarmine -stats`.
	MineStats = obs.MineStats
	// CollectTracer accumulates MineStats.
	CollectTracer = obs.CollectTracer
	// MetricsRegistry holds process-wide atomic counters, gauges and
	// histograms, exposed via expvar and a Prometheus text endpoint.
	MetricsRegistry = obs.Registry
)

// NopTracer discards all telemetry; nil tracers behave identically.
var NopTracer = obs.Nop

// NewCollectTracer returns an empty stats collector.
func NewCollectTracer() *CollectTracer { return obs.NewCollectTracer() }

// MultiTracer fans telemetry out to several tracers.
func MultiTracer(ts ...Tracer) Tracer { return obs.Multi(ts...) }

// DefaultMetrics is the process-wide metrics registry the CLI front
// ends publish.
var DefaultMetrics = obs.Default

// NewMetricsTracer folds mining telemetry into a metrics registry (nil:
// DefaultMetrics) under the given name prefix ("": "tarm").
func NewMetricsTracer(r *MetricsRegistry, prefix string) Tracer {
	return obs.NewRegistryTracer(r, prefix)
}

// MetricsMux serves /metrics (Prometheus text), /debug/vars (expvar)
// and /debug/pprof/ for a registry (nil: DefaultMetrics), the mux
// behind `iqms -metrics`.
func MetricsMux(r *MetricsRegistry) *http.ServeMux { return obs.DebugMux(r) }

// Mining server: the engine behind the tarmd binary, embeddable as an
// http.Handler. All sessions share one executor and one HoldCache, so
// concurrent identical statements deduplicate onto a single cold
// hold-table build; a bounded pool applies backpressure (429 +
// Retry-After) and Drain finishes in-flight statements on shutdown.
type (
	// Server is the concurrent TML statement service.
	Server = server.Server
	// ServerConfig sizes the pool, queue, deadlines and shared cache.
	ServerConfig = server.Config
)

// NewServer builds a mining server over db; serve it with net/http and
// call its Drain method before exiting.
func NewServer(db *DB, cfg ServerConfig) *Server { return server.New(db, cfg) }

// Synthetic workloads.
type (
	// QuestConfig parametrises the Agrawal–Srikant generator.
	QuestConfig = gen.QuestConfig
	// TemporalConfig parametrises the temporal generator.
	TemporalConfig = gen.TemporalConfig
	// PlantedRule is a ground-truth temporal rule embedded in generated
	// data.
	PlantedRule = gen.PlantedRule
)

// GenerateTemporal draws a timestamped synthetic transaction table.
func GenerateTemporal(cfg TemporalConfig, seed int64) (*TxTable, error) {
	return gen.GenerateTemporal(cfg, seed)
}
